//! The γ scaling-correction measurement (paper Eq. 4).
//!
//! Eq. 4 introduces `γ` because "the system performance will not double if
//! we increase the bottleneck tier resource from one server to two" — load
//! imbalance and shared downstream resources eat part of the gain. This
//! experiment measures that directly: scale the bottleneck (DB) tier
//! `K = 1..4` with the rest of the system over-provisioned and the soft
//! resources at each K's optimum, and report the per-step scaling
//! efficiency `X(K)/(K·X(1))`.

use dcm_core::experiment::{SteadyStateOptions, SteadyStateReport};
use dcm_ntier::balancer::BalancerPolicy;
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_sim::time::SimTime;
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::ProfileFactory;
use dcm_workload::report::LoadReport;

use crate::format::{num, TextTable};

use super::Fidelity;

/// One K's measurement under both balancing policies.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GammaPoint {
    /// Bottleneck-tier servers.
    pub servers: u32,
    /// Saturated throughput under round-robin (req/s).
    pub x_round_robin: f64,
    /// Saturated throughput under least-connections (req/s).
    pub x_least_conn: f64,
    /// `X_rr(K) / (K·X_rr(1))`.
    pub eff_round_robin: f64,
    /// `X_lc(K) / (K·X_lc(1))`.
    pub eff_least_conn: f64,
}

/// The γ measurement across bottleneck-tier sizes.
#[derive(Debug, Clone)]
pub struct GammaSweep {
    /// One point per K.
    pub points: Vec<GammaPoint>,
}

fn measure(k: u32, policy: BalancerPolicy, options: &SteadyStateOptions) -> SteadyStateReport {
    let app_servers = 2 * k;
    let conns = (36 * k).div_ceil(app_servers).max(1);
    let users = 400 * k;
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(1, app_servers, k)
        .soft(SoftConfig::new(2000, 22, conns))
        .balancer(policy)
        .seed(dcm_sim::rng::derive_seed(options.seed, u64::from(users)))
        .build();
    let warmup_end = SimTime::ZERO + options.warmup;
    let measure_end = warmup_end + options.measure;
    let population = UserPopulation::start_think_time(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        users,
        options.think_time_secs,
        measure_end,
    );
    engine.run_until(&mut world, measure_end);
    population.with_completions(|log| {
        let mut report = LoadReport::from_completions(log, warmup_end, measure_end);
        SteadyStateReport {
            users,
            throughput: report.throughput(),
            mean_rt: report.mean_response_time(),
            p95_rt: report.response_time_quantile(0.95).unwrap_or(0.0),
        }
    })
}

/// Runs the sweep: DB tier scaled `1..=max_servers`, app tier at `2K`
/// servers with per-server pools at the app optimum, connection budget at
/// the DB optimum (`36·K` split across app servers), users scaled with
/// capacity so every configuration is saturated. Both balancing policies
/// are measured — without per-server back-pressure, round-robin feeds a
/// slow database until it thrashes, while least-connections self-corrects.
pub fn run_gamma_sweep(fidelity: Fidelity, max_servers: u32) -> GammaSweep {
    let options = SteadyStateOptions {
        warmup: fidelity.warmup(),
        measure: fidelity.measure(),
        think_time_secs: 3.0,
        seed: 20170606,
        ..SteadyStateOptions::default()
    };
    // Measure every (K, policy) pair in parallel; the efficiency ratios
    // need K=1's throughputs, so they are computed from the ordered results
    // afterwards — same values the serial loop produced.
    let ks: Vec<u32> = (1..=max_servers.max(1)).collect();
    let descriptors: Vec<(u32, BalancerPolicy)> = ks
        .iter()
        .flat_map(|&k| {
            [
                (k, BalancerPolicy::RoundRobin),
                (k, BalancerPolicy::LeastConnections),
            ]
        })
        .collect();
    let reports =
        dcm_sim::runner::run_ordered(descriptors, |(k, policy)| measure(k, policy, &options));
    let (x1_rr, x1_lc) = (reports[0].throughput, reports[1].throughput);
    let points = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let (rr, lc) = (&reports[2 * i], &reports[2 * i + 1]);
            let eff = |x: f64, x1: f64| {
                if x1 > 0.0 {
                    x / (f64::from(k) * x1)
                } else {
                    0.0
                }
            };
            GammaPoint {
                servers: k,
                x_round_robin: rr.throughput,
                x_least_conn: lc.throughput,
                eff_round_robin: eff(rr.throughput, x1_rr),
                eff_least_conn: eff(lc.throughput, x1_lc),
            }
        })
        .collect();
    GammaSweep { points }
}

impl GammaSweep {
    /// The table of `K`, throughput, and efficiency per policy.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "db_servers",
            "x_rr(req/s)",
            "eff_rr",
            "x_lc(req/s)",
            "eff_lc",
        ]);
        for p in &self.points {
            t.row([
                p.servers.to_string(),
                num(p.x_round_robin, 1),
                num(p.eff_round_robin, 3),
                num(p.x_least_conn, 1),
                num(p.eff_least_conn, 3),
            ]);
        }
        t
    }

    /// Self-checks against the paper's qualitative claim.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(last) = self.points.last() {
            out.push(format!(
                "scaling the bottleneck tier to K={}: round-robin keeps {:.0} % of linear \
                 speedup, least-connections {:.0} % (paper Eq. 4: γ < 1 corrects for \
                 imbalance and shared resources; the gap is the slow-server runaway that \
                 per-server back-pressure prevents)",
                last.servers,
                100.0 * last.eff_round_robin,
                100.0 * last.eff_least_conn
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_reference_and_growth() {
        let sweep = run_gamma_sweep(Fidelity::Quick, 3);
        assert_eq!(sweep.points.len(), 3);
        assert!(
            (sweep.points[0].eff_round_robin - 1.0).abs() < 1e-9,
            "K=1 is the reference"
        );
        // Least-connections stays near-linear where round-robin's lack of
        // back-pressure lets a slow server run away.
        let last = sweep.points.last().unwrap();
        assert!(
            last.eff_least_conn > 0.8,
            "least-conn efficiency collapsed\n{}",
            sweep.table().render()
        );
        assert!(
            last.eff_least_conn >= last.eff_round_robin - 0.05,
            "least-conn should not lose to round-robin\n{}",
            sweep.table().render()
        );
        // Throughput must still grow with K under least-connections.
        assert!(last.x_least_conn > sweep.points[0].x_least_conn * 1.5);
    }
}
