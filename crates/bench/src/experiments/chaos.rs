//! Chaos: DCM vs EC2-AutoScale under injected faults — an app-tier VM
//! crash, a database straggler episode, and a low rate of transient
//! request failures — on a Fig. 5-style ramp-and-plateau load.
//!
//! The paper's evaluation assumes every booted VM stays healthy; this
//! experiment measures what each controller does when that assumption
//! breaks. The headline metric is the *degradation window*: how long
//! goodput stays below 90 % of its pre-crash mean after the crash. DCM
//! tracks the capacity its own decisions aimed for and re-provisions a
//! lost VM on the next control period regardless of thresholds, while the
//! baseline must wait until the survivors' utilization signal re-trips.

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{run_trace_experiment, TraceExperimentConfig, TraceRunResult};
use dcm_core::policy::ScalingConfig;
use dcm_ntier::system::InterTierRetry;
use dcm_sim::faults::FaultPlan;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::generator::RetryPolicy;
use dcm_workload::traces;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Goodput windows used for recovery measurement, in seconds.
const WINDOW_SECS: f64 = 5.0;
/// A window counts as degraded below this fraction of pre-crash goodput.
const RECOVERY_FRACTION: f64 = 0.9;

/// The chaos schedule and experiment configuration for a fidelity level.
///
/// Returns the trace config (faults, client retry, deadline, and
/// inter-tier retry installed) plus the crash time the recovery metrics
/// are anchored on.
pub fn chaos_config(fidelity: Fidelity) -> (TraceExperimentConfig, f64) {
    let (horizon_secs, crash_at) = match fidelity {
        Fidelity::Quick => (240.0, 120.0),
        Fidelity::Full => (600.0, 300.0),
    };
    // Ramp to a plateau high enough that the tiers scale out before the
    // crash; the crash then removes a meaningful fraction of app capacity.
    let mut config = TraceExperimentConfig::figure5(traces::step(60, 240, 30.0));
    config.horizon = SimTime::from_secs_f64(horizon_secs);
    config.seed = 4242;
    config.fault_plan = Some(
        FaultPlan::none()
            .with_crash(crash_at, 1, 0)
            .with_straggler(crash_at + 60.0, 2, 0, 4.0, 45.0)
            .with_transient_failures(0.002),
    );
    config.client_retry = Some(RetryPolicy::default());
    config.request_deadline_secs = Some(8.0);
    config.inter_tier_retry = Some(InterTierRetry::default());
    (config, crash_at)
}

/// Resilience metrics of one controller's chaos run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosSummary {
    /// Successful completions over the whole run.
    pub completed: u64,
    /// Requests lost to the crash or transient faults (after retries).
    pub failed: u64,
    /// Requests abandoned at the client deadline.
    pub timed_out: u64,
    /// Requests rejected for lack of a routable server.
    pub rejected: u64,
    /// Completions per second over the whole run.
    pub goodput: f64,
    /// Tier-entry attempts submitted per logical client request (client
    /// retries re-submit, so amplification > 1 under faults).
    pub retry_amplification: f64,
    /// Requests parked and re-attempted by the inter-tier retry layer.
    pub inter_tier_retries: u64,
    /// Fraction of requests meeting the 1-second response-time SLO.
    pub slo_attainment_1s: f64,
    /// 5-second windows with mean response time above 1 s.
    pub slo_windows_violated: usize,
    /// Mean goodput over the minute before the crash (req/s).
    pub pre_crash_goodput: f64,
    /// Post-crash 5-second windows below 90 % of pre-crash goodput.
    pub degraded_windows: usize,
    /// Seconds from the crash until goodput returns to >= 90 % of its
    /// pre-crash mean (and holds for the following window). `Some(0.0)`
    /// if goodput never dropped; `None` if it never recovered.
    pub time_to_recover_secs: Option<f64>,
}

/// Computes the resilience metrics of one run against the crash time.
pub fn summarize_chaos(run: &TraceRunResult, crash_at_secs: f64) -> ChaosSummary {
    let logical = run.completions.len().max(1) as u64;
    let overall = {
        let r = run.overall();
        (r.throughput(), r.sla_attainment(1.0))
    };
    let series = run.series(SimDuration::from_secs_f64(WINDOW_SECS));
    let slo_windows_violated = series.mean_rt.iter().filter(|&(_, v)| v > 1.0).count();

    // Pre-crash baseline: the minute of fully-pre-crash windows.
    let pre: Vec<f64> = series
        .throughput
        .iter()
        .filter(|&(at, _)| {
            let s = at.as_secs_f64();
            s + WINDOW_SECS <= crash_at_secs && s >= crash_at_secs - 60.0
        })
        .map(|(_, v)| v)
        .collect();
    let pre_crash_goodput = if pre.is_empty() {
        0.0
    } else {
        pre.iter().sum::<f64>() / pre.len() as f64
    };
    let target = RECOVERY_FRACTION * pre_crash_goodput;

    // Post-crash windows (including the one straddling the crash).
    let post: Vec<(f64, f64)> = series
        .throughput
        .iter()
        .filter(|&(at, _)| at.as_secs_f64() + WINDOW_SECS > crash_at_secs)
        .map(|(at, v)| (at.as_secs_f64(), v))
        .collect();
    let degraded_windows = post.iter().filter(|&&(_, v)| v < target).count();
    let mut dropped = false;
    let mut time_to_recover_secs = None;
    for (i, &(start, value)) in post.iter().enumerate() {
        if !dropped {
            if value < target {
                dropped = true;
            } else {
                continue;
            }
        }
        // Recovered once back at target and holding for the next window.
        if value >= target && post.get(i + 1).is_none_or(|&(_, v)| v >= target) {
            time_to_recover_secs = Some(start + WINDOW_SECS - crash_at_secs);
            break;
        }
    }
    if !dropped {
        time_to_recover_secs = Some(0.0);
    }

    ChaosSummary {
        completed: run.counters.completed,
        failed: run.counters.failed,
        timed_out: run.counters.timed_out,
        rejected: run.counters.rejected,
        goodput: overall.0,
        retry_amplification: run.counters.submitted as f64 / logical as f64,
        inter_tier_retries: run.counters.retried,
        slo_attainment_1s: overall.1,
        slo_windows_violated,
        pre_crash_goodput,
        degraded_windows,
        time_to_recover_secs,
    }
}

/// Both chaos runs and the schedule they shared.
#[derive(Debug, Clone)]
pub struct Chaos {
    /// DCM's resilience metrics.
    pub dcm: ChaosSummary,
    /// The baseline's resilience metrics.
    pub ec2: ChaosSummary,
    /// When the app-tier crash fired, in seconds.
    pub crash_at_secs: f64,
    /// Run length in seconds.
    pub horizon_secs: f64,
}

/// Runs both controllers through the same fault schedule (in parallel when
/// jobs > 1; each run builds its own world, so results are bit-identical
/// for every `--jobs` value).
pub fn run_chaos(fidelity: Fidelity, models: DcmModels) -> Chaos {
    let (config, crash_at_secs) = chaos_config(fidelity);
    let horizon_secs = config.horizon.as_secs_f64();
    let (ec2, dcm) = dcm_sim::runner::join(
        {
            let config = config.clone();
            move || {
                run_trace_experiment(&config, |bus| {
                    Ec2AutoScale::new(bus, ScalingConfig::default())
                })
            }
        },
        {
            let config = config.clone();
            move || run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models))
        },
    );
    Chaos {
        dcm: summarize_chaos(&dcm, crash_at_secs),
        ec2: summarize_chaos(&ec2, crash_at_secs),
        crash_at_secs,
        horizon_secs,
    }
}

fn ttr_display(ttr: Option<f64>) -> String {
    match ttr {
        Some(v) => num(v, 1),
        None => "never".to_string(),
    }
}

fn json_ttr(ttr: Option<f64>) -> String {
    match ttr {
        Some(v) => format!("{v:.6}"),
        None => "null".to_string(),
    }
}

fn summary_json(s: &ChaosSummary, indent: &str) -> String {
    format!(
        "{{\n\
         {indent}  \"completed\": {},\n\
         {indent}  \"failed\": {},\n\
         {indent}  \"timed_out\": {},\n\
         {indent}  \"rejected\": {},\n\
         {indent}  \"goodput\": {:.6},\n\
         {indent}  \"retry_amplification\": {:.6},\n\
         {indent}  \"inter_tier_retries\": {},\n\
         {indent}  \"slo_attainment_1s\": {:.6},\n\
         {indent}  \"slo_windows_violated\": {},\n\
         {indent}  \"pre_crash_goodput\": {:.6},\n\
         {indent}  \"degraded_windows\": {},\n\
         {indent}  \"time_to_recover_secs\": {}\n\
         {indent}}}",
        s.completed,
        s.failed,
        s.timed_out,
        s.rejected,
        s.goodput,
        s.retry_amplification,
        s.inter_tier_retries,
        s.slo_attainment_1s,
        s.slo_windows_violated,
        s.pre_crash_goodput,
        s.degraded_windows,
        json_ttr(s.time_to_recover_secs),
    )
}

impl Chaos {
    /// The head-to-head resilience table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["metric", "DCM", "EC2-AutoScale"]);
        let d = &self.dcm;
        let e = &self.ec2;
        t.row([
            "completed".to_string(),
            d.completed.to_string(),
            e.completed.to_string(),
        ]);
        t.row([
            "goodput (req/s)".to_string(),
            num(d.goodput, 1),
            num(e.goodput, 1),
        ]);
        t.row([
            "failed (crash+transient)".to_string(),
            d.failed.to_string(),
            e.failed.to_string(),
        ]);
        t.row([
            "timed out".to_string(),
            d.timed_out.to_string(),
            e.timed_out.to_string(),
        ]);
        t.row([
            "rejected".to_string(),
            d.rejected.to_string(),
            e.rejected.to_string(),
        ]);
        t.row([
            "retry amplification".to_string(),
            num(d.retry_amplification, 3),
            num(e.retry_amplification, 3),
        ]);
        t.row([
            "inter-tier retries".to_string(),
            d.inter_tier_retries.to_string(),
            e.inter_tier_retries.to_string(),
        ]);
        t.row([
            "SLO attainment (RT <= 1s)".to_string(),
            num(d.slo_attainment_1s, 3),
            num(e.slo_attainment_1s, 3),
        ]);
        t.row([
            "5s windows with RT > 1s".to_string(),
            d.slo_windows_violated.to_string(),
            e.slo_windows_violated.to_string(),
        ]);
        t.row([
            "pre-crash goodput (req/s)".to_string(),
            num(d.pre_crash_goodput, 1),
            num(e.pre_crash_goodput, 1),
        ]);
        t.row([
            "degraded 5s windows".to_string(),
            d.degraded_windows.to_string(),
            e.degraded_windows.to_string(),
        ]);
        t.row([
            "time to recover (s)".to_string(),
            ttr_display(d.time_to_recover_secs),
            ttr_display(e.time_to_recover_secs),
        ]);
        t
    }

    /// Stable JSON for `results/chaos.json` (hand-rolled; keys and shapes
    /// are fixed for downstream tooling and the determinism check).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"crash_at_secs\": {:.6},\n  \"horizon_secs\": {:.6},\n  \
             \"dcm\": {},\n  \"ec2\": {}\n}}\n",
            self.crash_at_secs,
            self.horizon_secs,
            summary_json(&self.dcm, "  "),
            summary_json(&self.ec2, "  "),
        )
    }

    /// Self-checks against the resilience claims.
    pub fn findings(&self) -> Vec<String> {
        let d = &self.dcm;
        let e = &self.ec2;
        let mut out = Vec::new();
        out.push(format!(
            "recovery: DCM returns to 90% pre-crash goodput in {} s vs EC2 {} s \
             (DCM replaces the crashed VM on its capacity memory within one \
             control period; the baseline waits for thresholds)",
            ttr_display(d.time_to_recover_secs),
            ttr_display(e.time_to_recover_secs),
        ));
        out.push(format!(
            "degradation: DCM {} degraded 5s windows vs EC2 {}",
            d.degraded_windows, e.degraded_windows
        ));
        out.push(format!(
            "goodput under faults: DCM {:.1} req/s vs EC2 {:.1} req/s; \
             retry amplification {:.3} vs {:.3}",
            d.goodput, e.goodput, d.retry_amplification, e.retry_amplification
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_model::concurrency::ConcurrencyModel;
    use dcm_ntier::law::reference;

    fn models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    #[test]
    fn chaos_dcm_recovers_no_slower_than_ec2() {
        let result = run_chaos(Fidelity::Quick, models());
        assert!(result.dcm.completed > 0 && result.ec2.completed > 0);
        assert!(
            result.dcm.failed > 0 && result.ec2.failed > 0,
            "the crash must strike in-flight work: {:?} / {:?}",
            result.dcm,
            result.ec2
        );
        let d = result
            .dcm
            .time_to_recover_secs
            .expect("DCM must recover goodput after the crash");
        // A baseline that never recovered (`None`) is strictly worse.
        if let Some(e) = result.ec2.time_to_recover_secs {
            assert!(
                d <= e,
                "DCM recovery ({d} s) must not lag the baseline ({e} s)\n{}",
                result.table().render()
            );
        }
        assert_eq!(result.table().len(), 12);
        assert_eq!(result.findings().len(), 3);
        // JSON is stable and parseable-shaped.
        let json = result.to_json();
        assert!(json.contains("\"time_to_recover_secs\""));
        assert!(json.ends_with("}\n"));
    }
}
