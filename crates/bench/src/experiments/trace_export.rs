//! `repro trace` / `repro explain` — the Fig. 5 comparison re-run with the
//! dcm-obs pipeline enabled, exporting per-controller observability
//! artifacts: a Perfetto-loadable Chrome trace, the flat span CSV, the
//! decision journal (JSON + rendered explanation), and the per-control-
//! period metrics time-series.
//!
//! Every artifact is byte-deterministic: re-running with any `--jobs`
//! value produces identical files (CI diffs `--jobs 1` against
//! `--jobs 4`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{run_trace_experiment, ObsArtifacts, ObsConfig};
use dcm_core::policy::ScalingConfig;
use dcm_obs::trace::{chrome_trace_json, spans_csv};

use crate::format::{num, TextTable};

use super::{fig5, Fidelity};

/// One controller's run with observability attached.
#[derive(Debug, Clone)]
pub struct ControllerExport {
    /// Artifact file stem suffix (`dcm`, `ec2`).
    pub label: &'static str,
    /// The recorded trace, journal, and metrics series.
    pub obs: ObsArtifacts,
    /// The usual Fig. 5 run summary, for the side table.
    pub summary: fig5::RunSummary,
}

/// Both Fig. 5 controllers with their observability artifacts.
#[derive(Debug, Clone)]
pub struct TraceExport {
    /// The DCM run.
    pub dcm: ControllerExport,
    /// The EC2-AutoScale baseline run.
    pub ec2: ControllerExport,
}

/// The sampling configuration per fidelity. Full runs sample 2 % of
/// requests (the committed artifacts stay small); quick runs sample 10 %
/// so short horizons still yield a readable trace. The ring capacity caps
/// the artifact size either way — evictions are counted, never silent.
pub fn obs_config(fidelity: Fidelity) -> ObsConfig {
    match fidelity {
        Fidelity::Quick => ObsConfig {
            sample_rate: 0.10,
            span_capacity: 4096,
        },
        Fidelity::Full => ObsConfig {
            sample_rate: 0.02,
            span_capacity: 4096,
        },
    }
}

/// Runs both Fig. 5 controllers with observability enabled. The two runs
/// are independent and execute concurrently when `--jobs > 1`; the
/// artifacts are nevertheless byte-identical for every jobs value.
pub fn run_trace_export(fidelity: Fidelity, models: DcmModels) -> TraceExport {
    let mut config = fig5::fig5_config(fidelity);
    config.obs = Some(obs_config(fidelity));
    let ec2_config = config.clone();
    let dcm_config = config;
    let (ec2, dcm) = dcm_sim::runner::join(
        move || {
            run_trace_experiment(&ec2_config, |bus| {
                Ec2AutoScale::new(bus, ScalingConfig::default())
            })
        },
        move || {
            run_trace_experiment(&dcm_config, |bus| {
                Dcm::new(bus, DcmConfig::default(), models)
            })
        },
    );
    let export = |label: &'static str, run: dcm_core::experiment::TraceRunResult| {
        let summary = fig5::summarize(&run);
        ControllerExport {
            label,
            obs: run.obs.expect("obs enabled for this run"),
            summary,
        }
    };
    TraceExport {
        dcm: export("dcm", dcm),
        ec2: export("ec2", ec2),
    }
}

impl TraceExport {
    /// Recorder/journal/series accounting for both runs — the `repro
    /// trace` console table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["artifact", "DCM", "EC2-AutoScale"]);
        type StatFn = fn(&ControllerExport) -> String;
        let stat = |f: StatFn| [f(&self.dcm), f(&self.ec2)];
        let rows: [(&str, StatFn); 8] = [
            ("spans seen", |c| c.obs.trace.stats.seen.to_string()),
            ("spans recorded", |c| c.obs.trace.stats.recorded.to_string()),
            ("spans unsampled", |c| {
                c.obs.trace.stats.unsampled.to_string()
            }),
            ("spans evicted (ring)", |c| {
                c.obs.trace.stats.evicted.to_string()
            }),
            ("server events", |c| c.obs.trace.events.len().to_string()),
            ("control ticks", |c| c.obs.trace.ticks.len().to_string()),
            ("journal entries", |c| c.obs.journal.len().to_string()),
            ("metric series rows", |c| c.obs.series.len().to_string()),
        ];
        for (name, f) in rows {
            let [d, e] = stat(f);
            t.row([name.to_string(), d, e]);
        }
        let [d, e] = stat(|c| num(c.summary.throughput, 1));
        t.row(["throughput (req/s)".to_string(), d, e]);
        t
    }

    /// Writes the ten artifacts (`fig5_{dcm,ec2}.{trace.json, spans.csv,
    /// journal.json, explain.txt, metrics.csv}`) into `dir`, creating it
    /// if needed. Returns the paths written, in a fixed order.
    ///
    /// # Errors
    ///
    /// Propagates any filesystem error.
    pub fn write_artifacts(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for run in [&self.dcm, &self.ec2] {
            let base = format!("fig5_{}", run.label);
            let files = [
                (
                    format!("{base}.trace.json"),
                    chrome_trace_json(&run.obs.trace),
                ),
                (format!("{base}.spans.csv"), spans_csv(&run.obs.trace)),
                (format!("{base}.journal.json"), run.obs.journal.to_json()),
                (
                    format!("{base}.explain.txt"),
                    run.obs.journal.render_explain(false),
                ),
                (format!("{base}.metrics.csv"), run.obs.series.to_csv()),
            ];
            for (name, content) in files {
                let path = dir.join(name);
                fs::write(&path, content)?;
                written.push(path);
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_model::concurrency::ConcurrencyModel;
    use dcm_ntier::law::reference;

    fn cheap_models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    #[test]
    fn quick_trace_export_produces_all_artifacts() {
        let export = run_trace_export(Fidelity::Quick, cheap_models());
        for run in [&export.dcm, &export.ec2] {
            assert!(run.obs.trace.stats.seen > 0, "{}: no spans seen", run.label);
            assert!(!run.obs.trace.spans.is_empty());
            assert!(!run.obs.journal.is_empty());
            assert!(!run.obs.series.is_empty());
            assert_eq!(run.obs.journal.len(), run.obs.series.len());
        }
        // DCM journals model fits; the baseline has none.
        assert_eq!(export.dcm.obs.journal.entries()[0].fits.len(), 2);
        assert!(export.ec2.obs.journal.entries()[0].fits.is_empty());
        let table = export.table();
        assert_eq!(table.len(), 9);
    }

    #[test]
    fn repeated_export_is_byte_identical() {
        let a = run_trace_export(Fidelity::Quick, cheap_models());
        let b = run_trace_export(Fidelity::Quick, cheap_models());
        for (x, y) in [(&a.dcm, &b.dcm), (&a.ec2, &b.ec2)] {
            assert_eq!(
                chrome_trace_json(&x.obs.trace),
                chrome_trace_json(&y.obs.trace)
            );
            assert_eq!(x.obs.journal.to_json(), y.obs.journal.to_json());
            assert_eq!(x.obs.series.to_csv(), y.obs.series.to_csv());
            assert_eq!(spans_csv(&x.obs.trace), spans_csv(&y.obs.trace));
        }
    }
}
