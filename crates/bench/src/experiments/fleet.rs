//! Fleet-scale DES: thousand-server tiers driven by cohort-aggregated
//! closed-loop users.
//!
//! The paper's experiments top out at a handful of servers per tier; this
//! experiment exercises the simulator itself at cloud-fleet scale — up to
//! 1,000 servers *per tier* (3,000 total) and 1,000,000 closed-loop users —
//! to demonstrate that the calendar event queue, the request slab, and the
//! cohort user aggregation keep the event rate and the memory footprint
//! flat as the modelled system grows.
//!
//! Every size is an independent job fanned out through
//! [`dcm_sim::runner::run_ordered`], so `results/fleet.json` and
//! `results/fleet.csv` are byte-identical for every `--jobs` value. The
//! artifacts carry **only** virtual-time quantities (event counts,
//! completions, simulated throughput, response times, slab counters);
//! wall-clock rates and peak RSS go to `results/perf.json`, which is
//! machine-dependent by nature.
//!
//! Load shape: each size `K` runs `K` servers in each of the three tiers
//! behind round-robin balancers (the O(1) balancer fast path) with
//! `1,000 · K` users at an exponential 30 s think time — about 60 %
//! utilisation of the app tier, a stable operating point where throughput
//! scales linearly with the fleet (`X ≈ N/(Z+R)`). Users start staggered
//! (first submission after one think time) so `t = 0` is not a synchronized
//! thundering herd, and they are multiplexed onto cohorts of 256: the
//! pending-event footprint of the generator is `K·1000/256` timers instead
//! of `K·1000`.

use dcm_ntier::balancer::BalancerPolicy;
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_sim::dist::Dist;
use dcm_sim::rng::derive_seed;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::cohort::CohortPopulation;
use dcm_workload::profile::ProfileFactory;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Base seed for the fleet sweep (per-size seeds derive from it).
const SEED: u64 = 20260807;

/// Users multiplexed onto one shared cohort timer.
const COHORT_SIZE: u32 = 256;

/// Mean exponential think time (seconds) — the closed-loop pacing.
const THINK_MEAN_SECS: f64 = 30.0;

/// Servers per tier at each fidelity.
fn sizes(fidelity: Fidelity) -> Vec<u32> {
    match fidelity {
        Fidelity::Quick => vec![2, 4],
        Fidelity::Full => vec![125, 250, 500, 1000],
    }
}

/// Closed-loop users per server (per tier triple).
fn users_per_server(fidelity: Fidelity) -> u32 {
    match fidelity {
        Fidelity::Quick => 100,
        Fidelity::Full => 1000,
    }
}

/// Simulated horizon.
fn horizon(fidelity: Fidelity) -> SimDuration {
    match fidelity {
        Fidelity::Quick => SimDuration::from_secs(20),
        Fidelity::Full => SimDuration::from_secs(300),
    }
}

/// One fleet size's measurement. Every field is a virtual-time quantity:
/// bit-identical across `--jobs` values and host machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPoint {
    /// Servers in each of the three tiers.
    pub servers_per_tier: u32,
    /// Closed-loop users driving the system.
    pub users: u32,
    /// Engine events executed over the horizon.
    pub events: u64,
    /// Requests completed (any outcome).
    pub completions: u64,
    /// Requests completed successfully.
    pub succeeded: u64,
    /// Simulated horizon (seconds).
    pub sim_secs: f64,
    /// Completions per simulated second.
    pub throughput: f64,
    /// Mean response time over all completions (seconds).
    pub mean_rt: f64,
    /// Largest single response time (seconds).
    pub max_rt: f64,
    /// Request-slab slots created fresh.
    pub slab_allocated: u64,
    /// Request-slab slots recycled from retired requests.
    pub slab_reused: u64,
    /// Live pending events at the horizon (generator timers + in-flight
    /// work) — the memory-footprint witness for cohort aggregation.
    pub pending_at_end: usize,
}

impl FleetPoint {
    /// Slab hit rate: fraction of request slots served by recycling.
    pub fn slab_hit_rate(&self) -> f64 {
        let total = self.slab_allocated + self.slab_reused;
        if total == 0 {
            0.0
        } else {
            self.slab_reused as f64 / total as f64
        }
    }
}

/// The fleet-scale sweep results.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// One point per fleet size, smallest first.
    pub points: Vec<FleetPoint>,
    /// Cohort size used for every point.
    pub cohort_size: u32,
}

fn measure(size: u32, fidelity: Fidelity) -> FleetPoint {
    let users = size * users_per_server(fidelity);
    let horizon = horizon(fidelity);
    let end = SimTime::ZERO + horizon;
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(size, size, size)
        .soft(SoftConfig::new(2000, 22, 18))
        .balancer(BalancerPolicy::RoundRobin)
        .seed(derive_seed(SEED, u64::from(size)))
        .build();
    let population = CohortPopulation::start_staggered(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        users,
        COHORT_SIZE,
        Dist::exponential_mean(THINK_MEAN_SECS),
        end,
    );
    population.disable_log();
    engine.run_until(&mut world, end);
    let stats = population.stats();
    let (slab_allocated, slab_reused) = world.system.request_slab_stats();
    let sim_secs = horizon.as_secs_f64();
    FleetPoint {
        servers_per_tier: size,
        users,
        events: engine.executed(),
        completions: stats.completed,
        succeeded: stats.succeeded,
        sim_secs,
        throughput: stats.completed as f64 / sim_secs,
        mean_rt: stats.response_mean(),
        max_rt: stats.response_max,
        slab_allocated,
        slab_reused,
        pending_at_end: engine.pending(),
    }
}

/// Runs the sweep: each fleet size is one independent deterministic job.
pub fn run_fleet(fidelity: Fidelity) -> Fleet {
    let points = dcm_sim::runner::run_ordered(sizes(fidelity), |size| measure(size, fidelity));
    Fleet {
        points,
        cohort_size: COHORT_SIZE,
    }
}

impl Fleet {
    /// Engine events across all sizes.
    pub fn total_events(&self) -> u64 {
        self.points.iter().map(|p| p.events).sum()
    }

    /// Request-slab counters summed across all sizes.
    pub fn total_slab(&self) -> (u64, u64) {
        self.points.iter().fold((0, 0), |(a, r), p| {
            (a + p.slab_allocated, r + p.slab_reused)
        })
    }

    /// The per-size scaling table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "servers/tier",
            "users",
            "events",
            "completions",
            "x(req/s)",
            "x/server",
            "mean_rt(s)",
            "max_rt(s)",
            "slab hit%",
            "pending@end",
        ]);
        for p in &self.points {
            t.row([
                p.servers_per_tier.to_string(),
                p.users.to_string(),
                p.events.to_string(),
                p.completions.to_string(),
                num(p.throughput, 1),
                num(p.throughput / f64::from(p.servers_per_tier), 3),
                num(p.mean_rt, 4),
                num(p.max_rt, 3),
                num(100.0 * p.slab_hit_rate(), 1),
                p.pending_at_end.to_string(),
            ]);
        }
        t
    }

    /// Stable JSON for `results/fleet.json`. Virtual-time quantities only
    /// — the file must be byte-identical across `--jobs` values, so no
    /// wall-clock rates and no RSS figures (those live in
    /// `results/perf.json`).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"cohort_size\": {},\n", self.cohort_size));
        json.push_str(&format!("  \"think_mean_secs\": {THINK_MEAN_SECS:.1},\n"));
        json.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        json.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"servers_per_tier\": {}, \"users\": {}, \"events\": {}, \
                 \"completions\": {}, \"succeeded\": {}, \"sim_secs\": {:.1}, \
                 \"throughput\": {:.6}, \"throughput_per_server\": {:.6}, \
                 \"mean_rt\": {:.6}, \"max_rt\": {:.6}, \
                 \"slab_allocated\": {}, \"slab_reused\": {}, \
                 \"slab_hit_rate\": {:.6}, \"pending_at_end\": {}}}{}\n",
                p.servers_per_tier,
                p.users,
                p.events,
                p.completions,
                p.succeeded,
                p.sim_secs,
                p.throughput,
                p.throughput / f64::from(p.servers_per_tier),
                p.mean_rt,
                p.max_rt,
                p.slab_allocated,
                p.slab_reused,
                p.slab_hit_rate(),
                p.pending_at_end,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Self-checks against the scaling claims.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let (first, last) = match (self.points.first(), self.points.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => return out,
        };
        out.push(format!(
            "fleet sweep: {} sizes up to {} servers/tier ({} users), \
             {} engine events total",
            self.points.len(),
            last.servers_per_tier,
            last.users,
            self.total_events()
        ));
        let x_first = first.throughput / f64::from(first.servers_per_tier);
        let x_last = last.throughput / f64::from(last.servers_per_tier);
        if x_first > 0.0 {
            out.push(format!(
                "throughput scales linearly with the fleet: {:.3} req/s per \
                 server at K={} vs {:.3} at K={} ({:.1} % of linear)",
                x_first,
                first.servers_per_tier,
                x_last,
                last.servers_per_tier,
                100.0 * x_last / x_first
            ));
        }
        let cohorts = last.users.div_ceil(self.cohort_size);
        out.push(format!(
            "cohort aggregation keeps the generator footprint at {} shared \
             timers for {} users (pending events at horizon: {}, vs ~{} \
             with per-user timers)",
            cohorts, last.users, last.pending_at_end, last.users
        ));
        let (allocated, reused) = self.total_slab();
        if allocated + reused > 0 {
            out.push(format!(
                "request slab: {:.1} % of {} request slots recycled a \
                 retired slot ({} fresh allocations across the whole sweep)",
                100.0 * reused as f64 / (allocated + reused) as f64,
                allocated + reused,
                allocated
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fleet_scales_and_serializes() {
        let fleet = run_fleet(Fidelity::Quick);
        assert_eq!(fleet.points.len(), 2);
        let first = &fleet.points[0];
        let last = &fleet.points[1];
        assert!(
            first.completions > 0,
            "no completions\n{}",
            fleet.table().render()
        );
        // Throughput per server must stay within 20% across a 2x fleet
        // growth at this (unsaturated) operating point.
        let x0 = first.throughput / f64::from(first.servers_per_tier);
        let x1 = last.throughput / f64::from(last.servers_per_tier);
        assert!(
            (x1 / x0 - 1.0).abs() < 0.2,
            "per-server throughput not flat: {x0} vs {x1}\n{}",
            fleet.table().render()
        );
        // The generator footprint is bounded by cohorts + in-flight work,
        // far below one pending event per user.
        assert!(
            last.pending_at_end < last.users as usize / 2,
            "pending {} vs users {}",
            last.pending_at_end,
            last.users
        );
        let json = fleet.to_json();
        assert!(json.contains("\"servers_per_tier\": 4"));
        assert!(json.ends_with("}\n"));
        assert_eq!(fleet.findings().len(), 4);
        assert_eq!(fleet.table().len(), 2);
    }

    /// Guard for the CI `--jobs` byte-identity cmp: `results/fleet.json`
    /// and `results/fleet.csv` must carry virtual-time quantities only. A
    /// field addition that smuggles in wall-clock rates, RSS, or any other
    /// host-dependent figure would silently invalidate the cmp (the files
    /// would still be written, just no longer reproducible), so every key
    /// and column is checked against an explicit allowlist here.
    #[test]
    fn fleet_artifacts_carry_no_host_dependent_fields() {
        let fleet = Fleet {
            cohort_size: 16,
            points: vec![FleetPoint {
                servers_per_tier: 4,
                users: 1_000,
                events: 50_000,
                completions: 9_000,
                succeeded: 9_000,
                sim_secs: 20.0,
                throughput: 450.0,
                mean_rt: 0.125,
                max_rt: 1.75,
                slab_allocated: 100,
                slab_reused: 8_900,
                pending_at_end: 70,
            }],
        };

        let allowed_keys = [
            "cohort_size",
            "think_mean_secs",
            "total_events",
            "points",
            "servers_per_tier",
            "users",
            "events",
            "completions",
            "succeeded",
            "sim_secs",
            "throughput",
            "throughput_per_server",
            "mean_rt",
            "max_rt",
            "slab_allocated",
            "slab_reused",
            "slab_hit_rate",
            "pending_at_end",
        ];
        let json = fleet.to_json();
        let mut rest = json.as_str();
        while let Some(open) = rest.find('"') {
            let tail = &rest[open + 1..];
            let close = tail.find('"').expect("unterminated string in JSON");
            let key = &tail[..close];
            assert!(
                allowed_keys.contains(&key),
                "fleet.json grew an unvetted key {key:?} — if it is a \
                 virtual-time quantity add it to the allowlist; if it is \
                 wall-clock/RSS/host data it belongs in results/perf.json"
            );
            rest = &tail[close + 1..];
        }

        // The CSV is the rendered table; its columns come from table().
        let banned = ["wall", "rss", "peak", "host", "cpu", "mem", "rate_hz"];
        for artifact in [json.to_lowercase(), fleet.table().to_csv().to_lowercase()] {
            for term in banned {
                assert!(
                    !artifact.contains(term),
                    "host-dependent term {term:?} leaked into a fleet artifact"
                );
            }
        }
    }

    #[test]
    fn fleet_is_deterministic_across_runs() {
        let a = run_fleet(Fidelity::Quick);
        let b = run_fleet(Fidelity::Quick);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.points, b.points);
    }
}
