//! `repro` — regenerate every table and figure of the DCM paper.
//!
//! ```text
//! cargo run -p dcm-bench --release --bin repro -- all
//! cargo run -p dcm-bench --release --bin repro -- fig5 --quick
//! cargo run -p dcm-bench --release --bin repro -- table1 --csv results/
//! ```

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dcm_bench::experiments::{
    ablation, chaos, fig2, fig4, fig5, fleet, gamma, hunt, league, mesh, queuebench, table1,
    trace_export, validate, Fidelity,
};
use dcm_bench::format::TextTable;
use dcm_obs::PerfLog;

struct Cli {
    command: String,
    experiment: Option<String>,
    fidelity: Fidelity,
    csv_dir: Option<PathBuf>,
    trace: Option<PathBuf>,
    obs_dir: PathBuf,
    seeds: usize,
    jobs: usize,
    audit: bool,
    paths: Vec<PathBuf>,
    max_drop: f64,
    budget: u64,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut experiment = None;
    let mut fidelity = Fidelity::Full;
    let mut csv_dir = None;
    let mut trace = None;
    let mut obs_dir = PathBuf::from("results/obs");
    let mut seeds = 1usize;
    let mut jobs = 0usize; // 0 = auto (available parallelism)
    let mut audit = false;
    let mut paths = Vec::new();
    let mut max_drop = 0.15;
    let mut budget = 200u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--audit" => audit = true,
            "--csv" => {
                let dir = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(dir));
            }
            "--trace" => {
                let file = args.next().ok_or("--trace needs a CSV file")?;
                trace = Some(PathBuf::from(file));
            }
            "--obs" => {
                let dir = args.next().ok_or("--obs needs a directory")?;
                obs_dir = PathBuf::from(dir);
            }
            "--seeds" => {
                let n = args.next().ok_or("--seeds needs a count")?;
                seeds = n.parse().map_err(|_| format!("bad seed count `{n}`"))?;
            }
            "--jobs" => {
                let n = args.next().ok_or("--jobs needs a worker count")?;
                jobs = n.parse().map_err(|_| format!("bad job count `{n}`"))?;
            }
            "--max-drop" => {
                let pct = args.next().ok_or("--max-drop needs a percentage")?;
                let pct: f64 = pct.parse().map_err(|_| format!("bad percentage `{pct}`"))?;
                max_drop = pct / 100.0;
            }
            "--budget" => {
                let n = args.next().ok_or("--budget needs a scenario count")?;
                budget = n.parse().map_err(|_| format!("bad budget `{n}`"))?;
            }
            other => {
                // `trace` / `explain` take the experiment as a positional;
                // `perfgate` takes two perf-log paths.
                let takes_experiment = command == "trace" || command == "explain";
                if takes_experiment && experiment.is_none() && !other.starts_with('-') {
                    experiment = Some(other.to_string());
                } else if command == "perfgate" && !other.starts_with('-') {
                    paths.push(PathBuf::from(other));
                } else {
                    return Err(format!("unknown flag `{other}`\n{}", usage()));
                }
            }
        }
    }
    Ok(Cli {
        command,
        experiment,
        fidelity,
        csv_dir,
        trace,
        obs_dir,
        seeds,
        jobs,
        audit,
        paths,
        max_drop,
        budget,
    })
}

fn usage() -> String {
    "usage: repro <command> [--quick] [--csv DIR]\n\
     commands:\n\
     \x20 fig2a       MySQL throughput vs request-processing concurrency\n\
     \x20 fig2b       1/1/1 vs 1/2/1 under the default soft allocation\n\
     \x20 table1      model training parameters and prediction results\n\
     \x20 fig4a       Tomcat thread-pool validation (1/1/1)\n\
     \x20 fig4b       DB connection-pool validation (1/2/1)\n\
     \x20 fig5        DCM vs EC2-AutoScale under the Large-Variation trace\n\
     \x20 ablation    DCM actuation ablation (threads/conns/both/neither)\n\
     \x20 sensitivity DCM robustness to mis-estimated N*\n\
     \x20 extensions  reactive vs predictive vs online-refit DCM\n\
     \x20 gamma       bottleneck-tier scaling efficiency (Eq. 4)\n\
     \x20 export-trace write the built-in Large-Variation trace as CSV\n\
     \x20 faults      behaviour under VM boot failures\n\
     \x20 chaos       crash/straggler injection + retry resilience (writes\n\
     \x20             results/chaos.json and results/chaos.csv)\n\
     \x20 validate    DES vs exact queueing theory (MVA oracle; writes\n\
     \x20             results/validate.json and results/validate.csv,\n\
     \x20             exits non-zero on any tolerance breach; every point\n\
     \x20             is also re-run with cohort-aggregated users and held\n\
     \x20             to the same gates)\n\
     \x20 fleet       fleet-scale DES: up to 1,000 servers per tier and 1M\n\
     \x20             cohort-aggregated users (writes results/fleet.json\n\
     \x20             and results/fleet.csv — virtual-time quantities only,\n\
     \x20             byte-identical for every --jobs value)\n\
     \x20 queuebench  event-queue microbenchmarks: calendar engine vs a\n\
     \x20             binary-heap reference (hold / cancel-heavy /\n\
     \x20             timeout-churn; wall-clock rates feed the perf log)\n\
     \x20 perf        the performance baseline: training + trace +\n\
     \x20             queuebench + fleet in one run, accumulated into\n\
     \x20             results/perf.json (the file CI gates against; every\n\
     \x20             other command writes its wall-clock log to the\n\
     \x20             gitignored results/perf_<command>.json instead)\n\
     \x20 league      controller league: DCM, EC2-AutoScale, MPC,\n\
     \x20             MMC-Threshold, and Holt-Winters on the step, flash,\n\
     \x20             sine, and chaos traces, ranked by SLO-violation\n\
     \x20             seconds then VM-hours then decision latency (writes\n\
     \x20             results/league.json, results/league.csv, and the MPC\n\
     \x20             plan journal results/league_mpc.journal.json —\n\
     \x20             byte-identical for every --jobs value; `repro\n\
     \x20             explain league` renders the ranking + journal)\n\
     \x20 mesh        controllers off the chain: DCM, MPC, and\n\
     \x20             EC2-AutoScale on a fan-out microservice mesh with a\n\
     \x20             warming cache (bottleneck migrates mid-run) and a\n\
     \x20             mixed small/large VM fleet ranked on dollars (writes\n\
     \x20             results/mesh.json and results/mesh.csv —\n\
     \x20             byte-identical for every --jobs value)\n\
     \x20 hunt        adversarial scenario fuzzing: a seed-deterministic\n\
     \x20             campaign of random topologies, traces, fault\n\
     \x20             schedules, and controller configs checked against\n\
     \x20             conservation/replay/cohort/doubling/MVA oracles;\n\
     \x20             shrinks violations and pins them under\n\
     \x20             tests/regressions/ (writes results/hunt.json and\n\
     \x20             results/hunt.csv — byte-identical for every --jobs\n\
     \x20             value; exits non-zero on any violation)\n\
     \x20 perfgate <baseline.json> <current.json>\n\
     \x20             events/s regression gate: exits non-zero when any\n\
     \x20             baseline experiment lost more than --max-drop (15 %)\n\
     \x20             of its rate or disappeared\n\
     \x20 trace <exp>   run fig5 with the dcm-obs pipeline on and export a\n\
     \x20             Perfetto-loadable Chrome trace, the span CSV, the\n\
     \x20             controller decision journal (JSON + text), and the\n\
     \x20             per-period metrics series (byte-identical for every\n\
     \x20             --jobs value; see --obs)\n\
     \x20 explain <exp> print the controller decision journal as text:\n\
     \x20             every scaling and soft-allocation action with the\n\
     \x20             measurements, fitted model, and reason behind it\n\
     \x20 all         everything above, in order\n\
     \x20 lint        dcm-lint determinism static analysis over the whole\n\
     \x20             workspace: cross-file taint, hot-path allocation,\n\
     \x20             panic-safety, and atomics-ordering rule families\n\
     \x20             (writes results/lint.json + results/lint.sarif,\n\
     \x20             exits non-zero on any violation)\n\
     flags:\n\
     \x20 --quick       short windows / coarse sweeps\n\
     \x20 --audit       run every experiment under the conservation auditor\n\
     \x20               (panics on any violated conservation law)\n\
     \x20 --csv DIR     also write every table as CSV into DIR\n\
     \x20 --trace FILE  drive fig5 with an external `seconds,users` CSV trace\n\
     \x20 --obs DIR     output directory for `trace` artifacts\n\
     \x20               (default results/obs)\n\
     \x20 --max-drop P  perfgate: allowed events/s drop in percent\n\
     \x20               (default 15)\n\
     \x20 --budget N    hunt: scenarios per campaign (default 200)\n\
     \x20 --seeds N     replicate fig5 across N seeds, report mean ± 95% CI\n\
     \x20 --jobs N      worker threads for independent runs (0 = all cores);\n\
     \x20               results are bit-identical for every N"
        .to_string()
}

/// Per-experiment wall-clock and simulated-event accounting, written at
/// the end of the run to `results/perf.json` (for `repro perf`, the
/// committed CI baseline) or `results/perf_<command>.json` (everything
/// else). The measurements live in a
/// [`dcm_obs::PerfLog`] (backed by the obs metrics registry); only the
/// wall-clock `Instant`s stay here — dcm-obs itself is wall-clock-free
/// under the Strict lint policy.
struct Perf {
    log: PerfLog,
    started: Instant,
}

impl Perf {
    fn new() -> Self {
        Perf {
            log: PerfLog::new(),
            started: Instant::now(),
        }
    }

    /// Runs one experiment, printing elapsed wall-clock and simulated
    /// events/second (events are counted engine-side across all workers).
    fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        dcm_sim::engine::reset_total_executed();
        let start = Instant::now();
        let result = f();
        let wall_secs = start.elapsed().as_secs_f64();
        let events = dcm_sim::engine::reset_total_executed();
        println!(
            "  [{name}: {wall_secs:.2} s wall, {events} simulated events, {:.0} events/s]",
            rate(events, wall_secs)
        );
        self.log.record(name, wall_secs, events);
        result
    }

    /// Records a measurement taken outside [`Perf::time`] (the queue
    /// microbenchmarks time their own loops; their "events" are queue
    /// operations).
    fn record_raw(&mut self, name: &str, wall_secs: f64, events: u64) {
        self.log.record(name, wall_secs, events);
    }

    /// Attaches the request-slab counters to the named entry.
    fn record_slab(&mut self, name: &str, allocated: u64, reused: u64) {
        self.log.record_slab(name, allocated, reused);
    }

    /// Attaches the process peak RSS (from `/proc/self/status`, if
    /// available) to the named entry.
    fn record_peak_rss(&mut self, name: &str) {
        if let Some(bytes) = peak_rss_bytes() {
            self.log.record_peak_rss(name, bytes);
        }
    }

    fn write(&self, command: &str, fidelity: Fidelity, jobs: usize) {
        if self.log.is_empty() {
            return;
        }
        let dir = PathBuf::from("results");
        // Only `repro perf` may write the committed CI baseline; every
        // other command gets its own per-experiment log (gitignored) so a
        // local `repro hunt` / `league` / `validate` cannot clobber the
        // file perfgate compares against.
        let path = if command == "perf" {
            dir.join("perf.json")
        } else {
            dir.join(format!("perf_{command}.json"))
        };
        let fidelity = if fidelity == Fidelity::Quick {
            "quick"
        } else {
            "full"
        };
        let json = self.log.to_json(
            command,
            fidelity,
            jobs,
            self.started.elapsed().as_secs_f64(),
        );
        match fs::create_dir_all(&dir).and_then(|()| fs::write(&path, json)) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}

/// `repro lint` — run the dcm-lint determinism pass over the workspace,
/// write `results/lint.json` and `results/lint.sarif`, and fail on any
/// violation. Equivalent to `cargo run -p dcm-lint -- --format json`.
fn run_lint() -> ExitCode {
    let root = dcm_lint::default_root();
    let report = match dcm_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("lint: cannot scan {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_text());
    let path = root.join("results/lint.json");
    let sarif_path = root.join("results/lint.sarif");
    let write = fs::create_dir_all(root.join("results"))
        .and_then(|()| fs::write(&path, report.to_json()))
        .and_then(|()| fs::write(&sarif_path, report.to_sarif()));
    match write {
        Ok(()) => println!("\nwrote {} and {}", path.display(), sarif_path.display()),
        Err(err) => eprintln!("warning: could not write lint reports: {err}"),
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The process's peak resident-set size in bytes (Linux `VmHWM`), if the
/// procfs entry is readable.
fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// `repro perfgate <baseline.json> <current.json>` — the CI events/s
/// regression gate: every experiment in the baseline must keep at least
/// `1 - max_drop` of its rate in the current log.
fn run_perfgate(paths: &[PathBuf], max_drop: f64) -> ExitCode {
    let [baseline_path, current_path] = paths else {
        eprintln!("perfgate needs exactly two paths: <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    };
    let read = |p: &PathBuf| {
        fs::read_to_string(p).map_err(|err| format!("cannot read {}: {err}", p.display()))
    };
    let (baseline, current) = match (read(baseline_path), read(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("perfgate: {err}");
            return ExitCode::FAILURE;
        }
    };
    let report = dcm_bench::perfjson::gate(&baseline, &current, max_drop);
    println!(
        "perfgate: {} vs {} (allowed drop {:.0} %)",
        current_path.display(),
        baseline_path.display(),
        100.0 * max_drop
    );
    for line in &report.lines {
        println!("  {line}");
    }
    for name in &report.missing {
        println!("  {name}: MISSING from current log");
    }
    for err in &report.errors {
        println!("  error: {err}");
    }
    if report.passed() {
        println!("perfgate: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perfgate: FAILED ({} regressed, {} missing, {} errors)",
            report.failures.len(),
            report.missing.len(),
            report.errors.len()
        );
        ExitCode::FAILURE
    }
}

fn rate(events: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        events as f64 / secs
    } else {
        0.0
    }
}

struct Output {
    csv_dir: Option<PathBuf>,
}

impl Output {
    fn section(&self, title: &str) {
        println!("\n=== {title} ===\n");
    }

    fn table(&self, name: &str, table: &TextTable) {
        print!("{}", table.render());
        if let Some(dir) = &self.csv_dir {
            if let Err(err) = fs::create_dir_all(dir)
                .and_then(|()| fs::write(dir.join(format!("{name}.csv")), table.to_csv()))
            {
                eprintln!("warning: could not write {name}.csv: {err}");
            }
        }
    }

    fn findings(&self, findings: &[String]) {
        for f in findings {
            println!("  * {f}");
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    if cli.command == "lint" {
        return run_lint();
    }
    if cli.command == "perfgate" {
        return run_perfgate(&cli.paths, cli.max_drop);
    }
    let out = Output {
        csv_dir: cli.csv_dir.clone(),
    };
    dcm_sim::runner::set_jobs(cli.jobs);
    dcm_core::experiment::set_global_audit(cli.audit);
    let jobs = dcm_sim::runner::jobs();
    let mut perf = Perf::new();
    let f = cli.fidelity;
    let run_all = cli.command == "all";
    // `perf` is the committed performance baseline: the model-training and
    // trace runs (the long-standing reference numbers) plus the queue
    // microbenchmarks and the fleet sweep, accumulated into one perf.json.
    let run_perf = cli.command == "perf";
    let wants = |name: &str| {
        run_all || cli.command == name || (run_perf && matches!(name, "queuebench" | "fleet"))
    };
    let mut matched = false;
    println!(
        "(running with {jobs} worker thread{})",
        if jobs == 1 { "" } else { "s" }
    );

    // Table I first when needed: fig4/fig5/ablation reuse the trained
    // models.
    let needs_models = [
        "table1",
        "fig4a",
        "fig4b",
        "fig5",
        "ablation",
        "sensitivity",
        "extensions",
        "faults",
        "chaos",
        "league",
        "mesh",
        "trace",
        "explain",
    ]
    .iter()
    .any(|&c| wants(c))
        || run_perf;
    let trained = if needs_models {
        match perf.time("training", || table1::run_table1(f)) {
            Ok(t) => Some(t),
            Err(err) => {
                eprintln!("model training failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    if wants("fig2a") {
        matched = true;
        out.section("Fig. 2(a): MySQL throughput vs request-processing concurrency");
        let result = perf.time("fig2a", || fig2::run_fig2a(f));
        out.table("fig2a", &result.table());
        out.findings(&result.findings());
    }
    if wants("fig2b") {
        matched = true;
        out.section("Fig. 2(b): scaling out 1/1/1 -> 1/2/1 with default soft resources");
        let result = perf.time("fig2b", || fig2::run_fig2b(f));
        out.table("fig2b", &result.table());
        out.findings(&result.findings());
    }
    if wants("table1") {
        matched = true;
        let t1 = trained.as_ref().expect("trained above");
        out.section("Table I: model training parameters and prediction results");
        out.table("table1", &t1.table());
        out.findings(&t1.findings());
    }
    if wants("fig4a") {
        matched = true;
        let t1 = trained.as_ref().expect("trained above");
        let n_star = t1.app.report.model.optimal_concurrency();
        out.section("Fig. 4(a): Tomcat thread-pool validation (1/1/1)");
        let result = perf.time("fig4a", || fig4::run_fig4a(f, n_star));
        out.table("fig4a", &result.table());
        out.findings(&result.findings());
    }
    if wants("fig4b") {
        matched = true;
        let t1 = trained.as_ref().expect("trained above");
        let per_server = (t1.db.report.model.optimal_concurrency() / 2).max(1);
        out.section("Fig. 4(b): DB connection-pool validation (1/2/1)");
        let result = perf.time("fig4b", || fig4::run_fig4b(f, per_server));
        out.table("fig4b", &result.table());
        out.findings(&result.findings());
    }

    let models = trained.as_ref().map(|t1| dcm_core::controller::DcmModels {
        app: t1.app.report.model,
        db: t1.db.report.model,
    });

    if wants("fig5") {
        matched = true;
        let models = models.expect("trained above");
        out.section("Fig. 5: DCM vs EC2-AutoScale under the Large-Variation trace");
        let external = match &cli.trace {
            Some(path) => match fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    dcm_workload::traces::WorkloadTrace::from_csv(&text).map_err(|e| e.to_string())
                }) {
                Ok(trace) => {
                    println!("(driving with external trace {})\n", path.display());
                    Some(trace)
                }
                Err(err) => {
                    eprintln!("could not load trace {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        if cli.seeds > 1 {
            let seeds: Vec<u64> = (0..cli.seeds as u64).map(|i| 42 + i * 1000).collect();
            let replicated = perf.time("fig5_replicated", || {
                fig5::run_fig5_replicated(f, models, &seeds)
            });
            out.table("fig5_replicated", &replicated.table());
            println!("({} seeds: {:?})", cli.seeds, replicated.seeds);
        }
        let result = perf.time("fig5", || match external {
            Some(trace) => fig5::run_fig5_on_trace(f, models, trace),
            None => fig5::run_fig5(f, models),
        });
        out.table("fig5_summary", &result.summary_table());
        println!("\n-- DCM timeline (30 s windows) --");
        out.table("fig5_dcm_timeline", &result.timeline_table(&result.dcm, 30));
        println!("\n-- EC2-AutoScale timeline (30 s windows) --");
        out.table("fig5_ec2_timeline", &result.timeline_table(&result.ec2, 30));
        out.findings(&result.findings());
    }
    if cli.command == "trace" || cli.command == "explain" || run_perf {
        matched = true;
        let models = models.expect("trained above");
        let experiment = cli.experiment.as_deref().unwrap_or("fig5");
        if cli.command == "explain" && experiment == "league" {
            out.section("Explain: the controller league ranking and the MPC plan journal");
            let result = perf.time("league", || league::run_league(f, models));
            out.table("league_standings", &result.standings_table());
            out.findings(&result.findings());
            println!("\n-- MPC decision journal (step trace) --\n");
            print!("{}", result.mpc_journal_explain);
        } else if experiment != "fig5" {
            eprintln!(
                "unknown experiment `{experiment}` for {} (only `fig5` has an obs \
                 pipeline; `explain` also accepts `league`)",
                cli.command
            );
            return ExitCode::FAILURE;
        } else if run_perf {
            // Timing reference only: same workload as `trace`, but the obs
            // artifacts stay untouched (they are regenerated by `repro
            // trace`, not by the perf baseline).
            out.section("Trace: Fig. 5 with the dcm-obs pipeline enabled (timing only)");
            let export = perf.time("trace", || trace_export::run_trace_export(f, models));
            out.table("trace_stats", &export.table());
        } else if cli.command == "explain" {
            out.section("Explain: every controller decision, with its inputs and reason");
            let export = perf.time("trace", || trace_export::run_trace_export(f, models));
            for run in [&export.dcm, &export.ec2] {
                let name = if run.label == "dcm" {
                    "DCM"
                } else {
                    "EC2-AutoScale"
                };
                println!("-- {name} decision journal --\n");
                print!("{}", run.obs.journal.render_explain(false));
            }
        } else {
            out.section("Trace: Fig. 5 with the dcm-obs pipeline enabled");
            let export = perf.time("trace", || trace_export::run_trace_export(f, models));
            out.table("trace_stats", &export.table());
            match export.write_artifacts(&cli.obs_dir) {
                Ok(paths) => {
                    println!();
                    for p in paths {
                        println!("wrote {}", p.display());
                    }
                }
                Err(err) => {
                    eprintln!(
                        "could not write obs artifacts into {}: {err}",
                        cli.obs_dir.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if wants("ablation") {
        matched = true;
        let models = models.expect("trained above");
        out.section("Ablation: which actuation carries DCM's benefit");
        let result = perf.time("ablation", || ablation::run_actuation_ablation(f, models));
        out.table("ablation", &result.table());
    }
    if wants("sensitivity") {
        matched = true;
        let models = models.expect("trained above");
        out.section("Sensitivity: DCM with mis-estimated N*");
        let result = perf.time("sensitivity", || {
            ablation::run_sensitivity(f, models, &[0.5, 0.75, 1.0, 1.5, 2.0, 4.0])
        });
        out.table("sensitivity", &result.table());
    }
    if cli.command == "export-trace" {
        matched = true;
        let dir = cli
            .csv_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results"));
        let trace = dcm_workload::traces::large_variation();
        match fs::create_dir_all(&dir)
            .and_then(|()| fs::write(dir.join("large_variation.csv"), trace.to_csv()))
        {
            Ok(()) => println!(
                "wrote {} ({} change points, peak {} users)",
                dir.join("large_variation.csv").display(),
                trace.points().len(),
                trace.peak_users()
            ),
            Err(err) => {
                eprintln!("could not write trace: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if wants("gamma") {
        matched = true;
        out.section("Scaling efficiency of the bottleneck tier (the Eq. 4 gamma)");
        let result = perf.time("gamma", || gamma::run_gamma_sweep(f, 4));
        out.table("gamma", &result.table());
        out.findings(&result.findings());
    }
    if wants("faults") {
        matched = true;
        let models = models.expect("trained above");
        out.section("Fault injection: VM boot failures");
        let result = perf.time("faults", || {
            ablation::run_fault_injection(f, models, &[0.0, 0.2, 0.5])
        });
        out.table("faults", &result.table());
    }
    if wants("extensions") {
        matched = true;
        let models = models.expect("trained above");
        out.section("Extensions: reactive vs predictive vs online-refit DCM");
        let result = perf.time("extensions", || ablation::run_extensions(f, models));
        out.table("extensions", &result.table());
    }
    if wants("chaos") {
        matched = true;
        let models = models.expect("trained above");
        out.section("Chaos: VM crash + straggler injection with retry resilience");
        let result = perf.time("chaos", || chaos::run_chaos(f, models));
        out.table("chaos", &result.table());
        out.findings(&result.findings());
        let dir = PathBuf::from("results");
        let write = fs::create_dir_all(&dir)
            .and_then(|()| fs::write(dir.join("chaos.json"), result.to_json()))
            .and_then(|()| fs::write(dir.join("chaos.csv"), result.table().to_csv()));
        match write {
            Ok(()) => println!(
                "\nwrote {} and {}",
                dir.join("chaos.json").display(),
                dir.join("chaos.csv").display()
            ),
            Err(err) => eprintln!("warning: could not write chaos results: {err}"),
        }
    }

    // `league` runs the full controller × trace matrix; like `hunt` it is
    // its own CI job, not part of `all`.
    if cli.command == "league" {
        matched = true;
        let models = models.expect("trained above");
        out.section("League: every controller on every trace, ranked");
        let result = perf.time("league", || league::run_league(f, models));
        out.table("league_standings", &result.standings_table());
        println!();
        out.table("league", &result.table());
        out.findings(&result.findings());
        let dir = PathBuf::from("results");
        let write = fs::create_dir_all(&dir)
            .and_then(|()| fs::write(dir.join("league.json"), result.to_json()))
            .and_then(|()| fs::write(dir.join("league.csv"), result.to_csv()))
            .and_then(|()| {
                fs::write(
                    dir.join("league_mpc.journal.json"),
                    &result.mpc_journal_json,
                )
            });
        match write {
            Ok(()) => println!(
                "\nwrote {}, {} and {}",
                dir.join("league.json").display(),
                dir.join("league.csv").display(),
                dir.join("league_mpc.journal.json").display()
            ),
            Err(err) => eprintln!("warning: could not write league results: {err}"),
        }
    }

    // `mesh` takes the controllers off the three-tier chain: a fan-out
    // microservice DAG with a warming cache and a mixed VM fleet. Like
    // `league` it is its own CI job, not part of `all`.
    if cli.command == "mesh" {
        matched = true;
        let models = models.expect("trained above");
        out.section("Mesh: DCM vs MPC vs EC2 on a fan-out DAG with warming cache");
        let result = perf.time("mesh", || mesh::run_mesh(f, models));
        out.table("mesh", &result.table());
        out.findings(&result.findings());
        let dir = PathBuf::from("results");
        let write = fs::create_dir_all(&dir)
            .and_then(|()| fs::write(dir.join("mesh.json"), result.to_json()))
            .and_then(|()| fs::write(dir.join("mesh.csv"), result.to_csv()));
        match write {
            Ok(()) => println!(
                "\nwrote {} and {}",
                dir.join("mesh.json").display(),
                dir.join("mesh.csv").display()
            ),
            Err(err) => eprintln!("warning: could not write mesh results: {err}"),
        }
    }

    if wants("queuebench") {
        matched = true;
        out.section("Queue microbenchmarks: calendar engine vs binary-heap reference");
        let result = queuebench::run_queuebench(f);
        out.table("queuebench", &result.table());
        out.findings(&result.findings());
        for p in &result.points {
            perf.record_raw(
                &format!("queue_{}_{}", p.profile, p.backend),
                p.wall_secs,
                p.ops,
            );
        }
    }
    if wants("fleet") {
        matched = true;
        out.section("Fleet-scale DES: thousand-server tiers, cohort-aggregated users");
        let result = perf.time("fleet", || fleet::run_fleet(f));
        out.table("fleet", &result.table());
        out.findings(&result.findings());
        let (allocated, reused) = result.total_slab();
        perf.record_slab("fleet", allocated, reused);
        perf.record_peak_rss("fleet");
        let dir = PathBuf::from("results");
        let write = fs::create_dir_all(&dir)
            .and_then(|()| fs::write(dir.join("fleet.json"), result.to_json()))
            .and_then(|()| fs::write(dir.join("fleet.csv"), result.table().to_csv()));
        match write {
            Ok(()) => println!(
                "\nwrote {} and {}",
                dir.join("fleet.json").display(),
                dir.join("fleet.csv").display()
            ),
            Err(err) => eprintln!("warning: could not write fleet results: {err}"),
        }
    }

    let mut gate_failed = false;
    if wants("validate") {
        matched = true;
        out.section("Validate: DES vs exact queueing theory (MVA oracle)");
        let result = perf.time("validate", || validate::run_validate(f));
        out.table("validate", &result.table());
        out.findings(&result.findings());
        let dir = PathBuf::from("results");
        let write = fs::create_dir_all(&dir)
            .and_then(|()| fs::write(dir.join("validate.json"), result.to_json()))
            .and_then(|()| fs::write(dir.join("validate.csv"), result.table().to_csv()));
        match write {
            Ok(()) => println!(
                "\nwrote {} and {}",
                dir.join("validate.json").display(),
                dir.join("validate.csv").display()
            ),
            Err(err) => eprintln!("warning: could not write validate results: {err}"),
        }
        if !result.passed() {
            eprintln!(
                "validate: conformance gate FAILED (per-user worst {:.3}% / {:.3}% \
                 zero-overhead / load-dependent vs gates {:.0}% / {:.0}%; cohort \
                 worst {:.3}% / {:.3}% under the same gates; mesh worst {:.3}%)",
                100.0 * result.max_rel_err(dcm_oracle::ScenarioKind::ZeroOverhead),
                100.0 * result.max_rel_err(dcm_oracle::ScenarioKind::LoadDependent),
                100.0 * result.tol_zero,
                100.0 * result.tol_law,
                100.0 * result.cohort_max_rel_err(dcm_oracle::ScenarioKind::ZeroOverhead),
                100.0 * result.cohort_max_rel_err(dcm_oracle::ScenarioKind::LoadDependent),
                100.0 * result.mesh_max_rel_err(),
            );
            gate_failed = true;
        }
    }

    // `hunt` is deliberately not part of `all`: it is an adversarial
    // campaign with its own budget and exit semantics, run by the CI
    // `hunt` job and by hand when hunting for breaking workloads.
    if cli.command == "hunt" {
        matched = true;
        out.section("Hunt: adversarial scenario fuzzing against invariant oracles");
        let result = perf.time("hunt", || hunt::run_hunt(cli.budget, hunt::SEED));
        out.table("hunt", &result.table());
        out.findings(&result.findings());
        let dir = PathBuf::from("results");
        let write = fs::create_dir_all(&dir)
            .and_then(|()| fs::write(dir.join("hunt.json"), result.to_json()))
            .and_then(|()| fs::write(dir.join("hunt.csv"), result.table().to_csv()));
        match write {
            Ok(()) => println!(
                "\nwrote {} and {}",
                dir.join("hunt.json").display(),
                dir.join("hunt.csv").display()
            ),
            Err(err) => eprintln!("warning: could not write hunt results: {err}"),
        }
        if !result.passed() {
            eprint!("{}", result.log.render_text());
            match result.write_regressions(&PathBuf::from("tests/regressions")) {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("pinned minimized regression case at {}", p.display());
                    }
                }
                Err(err) => eprintln!("warning: could not pin regression cases: {err}"),
            }
            eprintln!(
                "hunt: campaign FAILED ({} of {} scenarios violated an oracle)",
                result.violations.len(),
                result.budget
            );
            gate_failed = true;
        }
    }

    if !matched {
        eprintln!("unknown command `{}`\n{}", cli.command, usage());
        return ExitCode::FAILURE;
    }
    perf.write(&cli.command, f, jobs);
    if gate_failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
