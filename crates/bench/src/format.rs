//! Plain-text and CSV rendering of experiment results.

use std::fmt::Write as _;

/// A simple aligned text table with CSV export.
///
/// # Examples
///
/// ```
/// use dcm_bench::format::TextTable;
///
/// let mut t = TextTable::new(["n", "throughput"]);
/// t.row(["36", "169.2"]);
/// let text = t.render();
/// assert!(text.contains("throughput"));
/// assert!(t.to_csv().starts_with("n,throughput"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (no quoting needed for numeric tables).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` with fixed decimals, rendering non-finite values as
/// `-`.
pub fn num(value: f64, decimals: usize) -> String {
    if value.is_finite() {
        format!("{value:.decimals$}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["1", "2"]).row(["300", "4"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2.5"]);
        assert_eq!(t.to_csv(), "x,y\n1,2.5\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "-");
        assert_eq!(num(f64::INFINITY, 1), "-");
    }
}
