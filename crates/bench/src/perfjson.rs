//! Minimal reader and regression gate for `results/perf.json`.
//!
//! The workspace carries no JSON parser dependency, and the perf log's
//! shape is fixed (written by [`dcm_obs::PerfLog::to_json`]): a top-level
//! object with an `"experiments"` array whose entries each carry a
//! `"name"` string and an `"events_per_sec"` number. This module scans
//! exactly that shape — enough for the CI events/s regression gate — and
//! nothing more.

/// One experiment entry extracted from a perf log.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// The experiment name (`training`, `trace`, `fleet`, `queue_*`, ...).
    pub name: String,
    /// Simulated events (or queue operations) per wall-clock second.
    pub events_per_sec: f64,
}

/// Extracts the `(name, events_per_sec)` pairs from a perf-log JSON
/// document. Unknown fields are ignored; entries missing either field are
/// skipped.
pub fn parse_entries(json: &str) -> Vec<PerfEntry> {
    let mut entries = Vec::new();
    let Some(start) = json.find("\"experiments\"") else {
        return entries;
    };
    let mut rest = &json[start..];
    while let Some(pos) = rest.find("\"name\":") {
        rest = &rest[pos + "\"name\":".len()..];
        let Some(name) = read_string(rest) else {
            continue;
        };
        let Some(eps_pos) = rest.find("\"events_per_sec\":") else {
            break;
        };
        // The rate must belong to this entry: stop at the next name if the
        // rate field is missing from the current one.
        if let Some(next_name) = rest.find("\"name\":") {
            if next_name < eps_pos {
                continue;
            }
        }
        let after = &rest[eps_pos + "\"events_per_sec\":".len()..];
        if let Some(rate) = read_number(after) {
            entries.push(PerfEntry {
                name,
                events_per_sec: rate,
            });
        }
        rest = after;
    }
    entries
}

fn read_string(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

fn read_number(s: &str) -> Option<f64> {
    let trimmed = s.trim_start();
    let end = trimmed
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(trimmed.len());
    trimmed[..end].parse().ok()
}

/// The outcome of comparing a fresh perf log against a committed baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// One line per compared experiment.
    pub lines: Vec<String>,
    /// Experiments whose rate dropped below the allowed fraction.
    pub failures: Vec<String>,
    /// Baseline entries with no counterpart in the current log.
    pub missing: Vec<String>,
    /// Structural problems that make the comparison meaningless: an
    /// empty/unparseable baseline, or a baseline rate of zero (a ratio
    /// against it would be NaN or infinite, silently passing the gate).
    pub errors: Vec<String>,
}

impl GateReport {
    /// True when the inputs were comparable, no compared experiment
    /// regressed, and none disappeared.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.missing.is_empty() && self.errors.is_empty()
    }
}

/// Compares `current` against `baseline`: every baseline experiment must
/// still exist and keep at least `1 - max_drop` of its events/s (e.g.
/// `max_drop = 0.15` fails on a >15 % slowdown). Speedups always pass.
/// A baseline that parses to no entries, or a baseline entry whose rate
/// is zero or non-finite, fails the gate with an explicit error rather
/// than producing a NaN/Inf ratio verdict.
pub fn gate(baseline: &str, current: &str, max_drop: f64) -> GateReport {
    let base = parse_entries(baseline);
    let cur = parse_entries(current);
    let mut report = GateReport {
        lines: Vec::new(),
        failures: Vec::new(),
        missing: Vec::new(),
        errors: Vec::new(),
    };
    if base.is_empty() {
        report
            .errors
            .push("baseline has no experiment entries (empty or malformed perf.json?)".to_string());
        return report;
    }
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.name == b.name) else {
            report.missing.push(b.name.clone());
            continue;
        };
        if !(b.events_per_sec > 0.0 && b.events_per_sec.is_finite()) {
            report.errors.push(format!(
                "{}: baseline rate {} events/s is not a positive finite number; \
                 cannot compute a regression ratio",
                b.name, b.events_per_sec
            ));
            continue;
        }
        let ratio = c.events_per_sec / b.events_per_sec;
        let verdict = if ratio >= 1.0 - max_drop {
            "ok"
        } else {
            "FAIL"
        };
        report.lines.push(format!(
            "{}: {:.0} -> {:.0} events/s ({:+.1} %) {}",
            b.name,
            b.events_per_sec,
            c.events_per_sec,
            100.0 * (ratio - 1.0),
            verdict
        ));
        if ratio < 1.0 - max_drop {
            report.failures.push(b.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "command": "perf",
  "fidelity": "full",
  "jobs": 4,
  "total_wall_secs": 1.5,
  "total_events": 300,
  "experiments": [
    {"name": "training", "wall_secs": 0.5, "events": 100, "events_per_sec": 200.0},
    {"name": "trace", "wall_secs": 1.0, "events": 200, "events_per_sec": 200.0, "peak_rss_mb": 12.5}
  ]
}
"#;

    #[test]
    fn parses_the_perflog_shape() {
        let entries = parse_entries(SAMPLE);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "training");
        assert_eq!(entries[0].events_per_sec, 200.0);
        assert_eq!(entries[1].name, "trace");
    }

    #[test]
    fn parses_real_perflog_output() {
        let mut log = dcm_obs::PerfLog::new();
        log.record("training", 0.5, 1_000_000);
        log.record("fleet", 2.0, 50_000_000);
        log.record_peak_rss("fleet", 512 * 1024 * 1024);
        log.record_slab("fleet", 10, 90);
        let json = log.to_json("perf", "full", 1, 2.5);
        let entries = parse_entries(&json);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].events_per_sec, 2_000_000.0);
        assert_eq!(entries[1].name, "fleet");
        assert_eq!(entries[1].events_per_sec, 25_000_000.0);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let current = SAMPLE.replace("\"events_per_sec\": 200.0}", "\"events_per_sec\": 180.0}");
        let report = gate(SAMPLE, &current, 0.15);
        assert!(report.passed(), "10% drop within 15% gate: {report:?}");
        let slow = SAMPLE.replace("\"events_per_sec\": 200.0}", "\"events_per_sec\": 160.0}");
        let report = gate(SAMPLE, &slow, 0.15);
        assert!(!report.passed());
        assert_eq!(report.failures, vec!["training".to_string()]);
    }

    #[test]
    fn gate_rejects_empty_and_malformed_baselines() {
        for baseline in ["", "{}", "not json at all", "{\"experiments\": []}"] {
            let report = gate(baseline, SAMPLE, 0.15);
            assert!(!report.passed(), "baseline {baseline:?} must not pass");
            assert_eq!(report.errors.len(), 1);
            assert!(
                report.errors[0].contains("no experiment entries"),
                "unclear message: {}",
                report.errors[0]
            );
        }
    }

    #[test]
    fn gate_rejects_zero_rate_baseline_entries() {
        let zeroed = SAMPLE.replace(
            "\"name\": \"training\", \"wall_secs\": 0.5, \"events\": 100, \"events_per_sec\": 200.0",
            "\"name\": \"training\", \"wall_secs\": 0.5, \"events\": 0, \"events_per_sec\": 0",
        );
        let report = gate(&zeroed, SAMPLE, 0.15);
        assert!(!report.passed(), "zero-rate baseline must not pass");
        assert_eq!(report.errors.len(), 1);
        assert!(
            report.errors[0].contains("training") && report.errors[0].contains("positive finite"),
            "unclear message: {}",
            report.errors[0]
        );
        // The healthy entry is still compared.
        assert_eq!(report.lines.len(), 1);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn gate_flags_missing_experiments() {
        let current = r#""experiments": [
    {"name": "training", "wall_secs": 0.5, "events": 100, "events_per_sec": 500.0}
  ]"#;
        let report = gate(SAMPLE, current, 0.15);
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["trace".to_string()]);
    }
}
