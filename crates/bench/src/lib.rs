//! # dcm-bench — the reproduction's benchmark harness
//!
//! One experiment module per table/figure of the paper's evaluation, each
//! producing structured data, an aligned text table, and a `findings()`
//! self-check of the paper's qualitative claims:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`experiments::fig2`] | Fig. 2(a) MySQL concurrency dome, Fig. 2(b) scale-out crossover |
//! | [`experiments::table1`] | Table I model training (parameters, `R²`, `N*`, `X_max`) |
//! | [`experiments::fig4`] | Fig. 4(a)/(b) validation of the optimal allocations |
//! | [`experiments::fig5`] | Fig. 5 DCM vs EC2-AutoScale under the Large-Variation trace |
//! | [`experiments::ablation`] | actuation ablation + `N*` sensitivity (ours, beyond the paper) |
//!
//! The `repro` binary drives them (`cargo run -p dcm-bench --release --bin
//! repro -- all`); the Criterion benches exercise quick variants for
//! regression tracking.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod format;
pub mod perfjson;

pub use experiments::Fidelity;
