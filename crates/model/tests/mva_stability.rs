//! Numerical-stability regression for the closed-network solver.
//!
//! The original Reiser–Lavenberg marginal-distribution recursion lost
//! probability mass to catastrophic cancellation for wide multi-server
//! stations near saturation (worst case observed: c = 28, N = 120 gave
//! X = 15.0 against a true 92.9 — an 84 % error) — exactly the regime the
//! MPC planner enumerates. The convolution solver must agree with a
//! direct birth–death steady-state solution to float precision across
//! the whole (c, N) sweep.

use dcm_model::mva::{ClosedNetwork, Station};

/// Direct birth–death steady state for one station + terminal: states
/// `j = 0..=n` jobs at the station, birth `λ(j) = (n-j)/Z`, death `μ(j)`.
fn birth_death_throughput(n: u32, z: f64, mu: impl Fn(u32) -> f64) -> f64 {
    // Log-space to survive the large populations this test sweeps.
    let n = n as usize;
    let mut lpi = vec![0.0f64; n + 1];
    for j in 1..=n {
        let lam = (n - (j - 1)) as f64 / z;
        lpi[j] = lpi[j - 1] + lam.ln() - mu(j as u32).ln();
    }
    let mx = lpi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let pi: Vec<f64> = lpi.iter().map(|&l| (l - mx).exp()).collect();
    let total: f64 = pi.iter().sum();
    (1..=n).map(|j| pi[j] / total * mu(j as u32)).sum()
}

#[test]
fn wide_multi_server_stations_stay_exact_at_saturation() {
    let s = 0.2713;
    for c in [1u32, 4, 14, 28, 57, 171, 512] {
        for n in [1u32, 20, 60, 89, 120, 250] {
            let net = ClosedNetwork::new(
                vec![Station::Queueing {
                    visit_ratio: 1.0,
                    service_time: s,
                    servers: c,
                }],
                1.0,
            );
            let x = net.solve(n).throughput;
            let truth = birth_death_throughput(n, 1.0, |j| f64::from(j.min(c)) / s);
            assert!(
                (x - truth).abs() / truth < 1e-9,
                "c={c} n={n}: solver {x} vs birth-death {truth}"
            );
        }
    }
}

#[test]
fn load_dependent_stations_stay_exact_at_saturation() {
    // A concurrency-law station pushed deep past its knee.
    let (s0, alpha, beta) = (0.02, 0.002, 4.0e-4);
    let s_star = |m: u32| {
        let m = f64::from(m.max(1));
        s0 + alpha * (m - 1.0) + beta * m * (m - 1.0)
    };
    let threads = 48u32;
    let rate = dcm_model::mva::law_rate_table(s0, threads, 300, s_star);
    let net = ClosedNetwork::new(
        vec![Station::LoadDependent {
            visit_ratio: 1.0,
            service_time: s0,
            rate,
        }],
        0.5,
    );
    for n in [5u32, 40, 120, 300] {
        let x = net.solve(n).throughput;
        let truth = birth_death_throughput(n, 0.5, |j| {
            let m = j.min(threads);
            f64::from(m) / s_star(m)
        });
        assert!(
            (x - truth).abs() / truth < 1e-9,
            "n={n}: solver {x} vs birth-death {truth}"
        );
    }
}

#[test]
fn queue_lengths_conserve_population_in_wide_networks() {
    let net = ClosedNetwork::new(
        vec![
            Station::Delay {
                visit_ratio: 1.0,
                service_time: 0.01,
            },
            Station::Queueing {
                visit_ratio: 1.0,
                service_time: 0.05,
                servers: 32,
            },
            Station::Queueing {
                visit_ratio: 2.0,
                service_time: 0.03,
                servers: 96,
            },
        ],
        0.7,
    );
    for n in [1u32, 64, 256, 800] {
        let sol = net.solve(n);
        let at_stations: f64 = sol.station_queue.iter().sum();
        let thinking = sol.throughput * 0.7;
        assert!(
            (at_stations + thinking - f64::from(n)).abs() / f64::from(n) < 1e-9,
            "n={n}: {at_stations} + {thinking}"
        );
    }
}
