//! Property-based tests for the model crate: solver correctness, fit
//! recovery of planted models, and invariances of the throughput model.

use proptest::prelude::*;

use dcm_model::concurrency::{fit_throughput_curve, ConcurrencyModel, FitOptions};
use dcm_model::laws::{analyze_bottleneck, TierDemand};
use dcm_model::linalg::solve;
use dcm_model::lsq::{linear_regression, r_squared};

proptest! {
    /// `solve` produces x with A·x ≈ b for diagonally dominant systems.
    #[test]
    fn solver_roundtrips(
        n in 2usize..6,
        seed_vals in prop::collection::vec(-5.0f64..5.0, 36 + 6),
    ) {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = seed_vals[i * 6 + j];
            }
            // Diagonal dominance guarantees solvability.
            a[i * n + i] += 20.0;
        }
        let b: Vec<f64> = seed_vals[36..36 + n].to_vec();
        let x = solve(&a, &b).expect("diagonally dominant");
        for i in 0..n {
            let dot: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            prop_assert!((dot - b[i]).abs() < 1e-8, "row {i}");
        }
    }

    /// Linear regression exactly recovers planted lines.
    #[test]
    fn regression_recovers_lines(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let (ae, be) = linear_regression(&xs, &ys);
        prop_assert!((ae - a).abs() < 1e-6);
        prop_assert!((be - b).abs() < 1e-6);
        let predicted: Vec<f64> = xs.iter().map(|x| ae + be * x).collect();
        prop_assert!(r_squared(&ys, &predicted) > 1.0 - 1e-9 || b == 0.0);
    }

    /// The fitted model reproduces the planted curve's predictions (the
    /// parametrization is scale-degenerate, so compare predictions and the
    /// knee, not raw coefficients).
    #[test]
    fn fit_recovers_planted_curves(
        s0 in 0.005f64..0.08,
        alpha_frac in 0.05f64..0.7,
        knee in 8.0f64..60.0,
        gamma in 0.5f64..3.0,
    ) {
        let alpha = s0 * alpha_frac;
        let beta = (s0 - alpha) / (knee * knee);
        let truth = ConcurrencyModel::new(s0, alpha, beta, gamma, 1);
        let top = (knee * 3.0) as u32;
        let data: Vec<(f64, f64)> = (1..=top)
            .map(|n| (f64::from(n), truth.predict_throughput(f64::from(n))))
            .collect();
        let report = fit_throughput_curve(&data, 1, FitOptions::default()).expect("fits");
        prop_assert!(report.r_squared > 0.999, "r2 {}", report.r_squared);
        // Predictions agree everywhere on the training range.
        for n in [1u32, knee as u32, top] {
            let n = f64::from(n.max(1));
            let want = truth.predict_throughput(n);
            let got = report.model.predict_throughput(n);
            prop_assert!((got - want).abs() / want < 0.02, "X({n}): {got} vs {want}");
        }
        // Knee within ±20% (flat domes make it fuzzy at the extremes).
        let fitted = f64::from(report.model.optimal_concurrency());
        prop_assert!(
            (fitted - knee).abs() / knee < 0.2,
            "knee {fitted} vs planted {knee}"
        );
    }

    /// Model predictions are invariant under the (s0, α, β, γ) scale gauge.
    #[test]
    fn model_scale_gauge_invariance(scale in 0.1f64..10.0) {
        let m1 = ConcurrencyModel::new(0.03, 0.01, 5e-5, 1.0, 1);
        let m2 = ConcurrencyModel::new(
            0.03 * scale,
            0.01 * scale,
            5e-5 * scale,
            scale,
            1,
        );
        prop_assert_eq!(m1.optimal_concurrency(), m2.optimal_concurrency());
        for n in [1.0, 10.0, 20.0, 100.0] {
            let a = m1.predict_throughput(n);
            let b = m2.predict_throughput(n);
            prop_assert!((a - b).abs() / a < 1e-9);
        }
    }

    /// Bottleneck analysis picks the max demand-per-server tier and caps
    /// utilizations at 1 for the bottleneck itself.
    #[test]
    fn bottleneck_is_max_demand(
        demands in prop::collection::vec((0.001f64..0.1, 1u32..4, 1.0f64..3.0), 1..6),
    ) {
        let tiers: Vec<TierDemand> = demands
            .iter()
            .map(|&(s, k, v)| TierDemand {
                visit_ratio: v,
                service_time: s,
                servers: k,
            })
            .collect();
        let analysis = analyze_bottleneck(&tiers, 1.0);
        let expected = tiers
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.demand_per_server()
                    .partial_cmp(&b.demand_per_server())
                    .unwrap()
            })
            .unwrap()
            .0;
        prop_assert_eq!(analysis.bottleneck, expected);
        prop_assert!((analysis.utilizations[expected] - 1.0).abs() < 1e-9);
        for u in &analysis.utilizations {
            prop_assert!(*u <= 1.0 + 1e-9);
        }
    }
}
