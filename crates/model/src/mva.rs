//! Exact Mean Value Analysis for closed product-form networks.
//!
//! The oracle behind the DES conformance harness: a closed single-class
//! network of a think-time terminal (the machine-repairman client model)
//! plus an arbitrary mix of stations —
//!
//! * **delay** (infinite-server) stations: a frictionless simulated server
//!   whose thread pool never queues is exactly this (every burst progresses
//!   at full speed regardless of co-residents);
//! * **multi-server queueing** stations: a finite thread pool of `c`
//!   threads in front of a frictionless CPU serves like `M/M/c` (rate
//!   `min(n,c)/S`);
//! * **load-dependent** stations with an arbitrary completion-rate
//!   multiplier `r(n)` (rate `r(n)/S`), which is how the paper's
//!   concurrency law `S*(N)` enters: `n` busy threads on a lawful CPU
//!   complete at rate `min(n,c)·S⁰/S*(min(n,c))` per mean demand.
//!
//! The solver is the exact convolution algorithm (Buzen) with
//! load-dependent service factors: every quantity comes out of
//! normalization-constant ratios `G(N-1)/G(N)` and exact marginal
//! queue-length distributions `p_m(j | N) = f_m(j)·G^(m)(N-j)/G(N)` — no
//! Schweitzer/AMVA approximation anywhere. Convolution sums are
//! all-positive, so (unlike the Reiser–Lavenberg marginal-distribution
//! recursion, which loses mass to cancellation for wide multi-server
//! stations near saturation) the algorithm is numerically stable; each
//! working vector is max-normalized against overflow, and the scales
//! cancel in every reported ratio. Cost is `O(stations · N²)`, trivial
//! for the populations the simulator sweeps.
//!
//! [`asymptotic_bounds`] provides the classic operational bounds
//! `X(N) ≤ min(N/(Z+ΣD), min_m μ_m^max/V_m)` that any measurement must
//! respect regardless of distributional assumptions.

use serde::{Deserialize, Serialize};

/// One service station of a closed network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Station {
    /// Infinite-server (pure delay) station: residence per visit is always
    /// `service_time`, no queueing ever.
    Delay {
        /// Visit ratio `V_m` per client request.
        visit_ratio: f64,
        /// Mean per-visit service time `S_m` (seconds).
        service_time: f64,
    },
    /// Multi-server FCFS/PS queueing station: completion rate `min(n,c)/S`
    /// with `n` jobs present.
    Queueing {
        /// Visit ratio `V_m` per client request.
        visit_ratio: f64,
        /// Mean per-visit service time `S_m` (seconds).
        service_time: f64,
        /// Parallel servers (threads) `c`.
        servers: u32,
    },
    /// General load-dependent station: completion rate `r(n)/S` with `n`
    /// jobs present, where `r(n) = rate[min(n, rate.len()) - 1]`.
    LoadDependent {
        /// Visit ratio `V_m` per client request.
        visit_ratio: f64,
        /// Mean per-visit service time `S_m` (seconds).
        service_time: f64,
        /// Rate multipliers `r(1), r(2), …`; the last entry extends to all
        /// larger populations.
        rate: Vec<f64>,
    },
}

impl Station {
    /// A multi-server queueing station for a server whose VM capacity
    /// multiplier rescales its CPU speed: a burst of `S` work-seconds on a
    /// capacity-`c` machine finishes in `S/c` wall seconds, so the station
    /// serves at effective time `service_time / capacity`. This is how
    /// heterogeneous VM types enter the oracle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    pub fn queueing_with_capacity(
        visit_ratio: f64,
        service_time: f64,
        servers: u32,
        capacity: f64,
    ) -> Station {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        Station::Queueing {
            visit_ratio,
            service_time: service_time / capacity,
            servers,
        }
    }

    /// The station's visit ratio `V_m`.
    pub fn visit_ratio(&self) -> f64 {
        match self {
            Station::Delay { visit_ratio, .. }
            | Station::Queueing { visit_ratio, .. }
            | Station::LoadDependent { visit_ratio, .. } => *visit_ratio,
        }
    }

    /// The station's mean per-visit service time `S_m`.
    pub fn service_time(&self) -> f64 {
        match self {
            Station::Delay { service_time, .. }
            | Station::Queueing { service_time, .. }
            | Station::LoadDependent { service_time, .. } => *service_time,
        }
    }

    /// Service demand `D_m = V_m·S_m` per client request.
    pub fn demand(&self) -> f64 {
        self.visit_ratio() * self.service_time()
    }

    /// Completion rate (jobs/sec) with `n` jobs present; `None` for delay
    /// stations (whose "rate" is unbounded).
    fn rate_at(&self, n: u32) -> Option<f64> {
        if n == 0 {
            return Some(0.0);
        }
        match self {
            Station::Delay { .. } => None,
            Station::Queueing {
                service_time,
                servers,
                ..
            } => Some(f64::from(n.min((*servers).max(1))) / service_time),
            Station::LoadDependent {
                service_time, rate, ..
            } => {
                let idx = (n as usize).min(rate.len()) - 1;
                Some(rate[idx] / service_time)
            }
        }
    }

    /// The station's maximum sustainable completion rate, `sup_n μ(n)`;
    /// `None` (unbounded) for delay stations.
    pub fn max_rate(&self) -> Option<f64> {
        match self {
            Station::Delay { .. } => None,
            Station::Queueing {
                service_time,
                servers,
                ..
            } => Some(f64::from((*servers).max(1)) / service_time),
            Station::LoadDependent {
                service_time, rate, ..
            } => rate
                .iter()
                .copied()
                .fold(None, |acc: Option<f64>, r| {
                    Some(acc.map_or(r, |a| a.max(r)))
                })
                .map(|r| r / service_time),
        }
    }

    fn is_delay(&self) -> bool {
        matches!(self, Station::Delay { .. })
    }

    fn validate(&self) {
        let v = self.visit_ratio();
        let s = self.service_time();
        assert!(v.is_finite() && v >= 0.0, "visit ratio must be >= 0");
        assert!(s.is_finite() && s > 0.0, "service time must be positive");
        if let Station::LoadDependent { rate, .. } = self {
            assert!(!rate.is_empty(), "load-dependent rate table is empty");
            assert!(
                rate.iter().all(|r| r.is_finite() && *r > 0.0),
                "rate multipliers must be positive"
            );
        }
    }
}

/// A closed single-class network: a think-time terminal plus stations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedNetwork {
    /// The service stations.
    pub stations: Vec<Station>,
    /// Mean think time `Z` at the terminal (seconds, `>= 0`).
    pub think_time: f64,
}

impl ClosedNetwork {
    /// Creates a network.
    ///
    /// # Panics
    ///
    /// Panics on an empty station list, a non-finite/negative think time,
    /// or any invalid station parameter.
    pub fn new(stations: Vec<Station>, think_time: f64) -> Self {
        assert!(!stations.is_empty(), "network needs at least one station");
        assert!(
            think_time.is_finite() && think_time >= 0.0,
            "think time must be >= 0"
        );
        for s in &stations {
            s.validate();
        }
        ClosedNetwork {
            stations,
            think_time,
        }
    }

    /// Total service demand `ΣD_m` per client request.
    pub fn total_demand(&self) -> f64 {
        self.stations.iter().map(Station::demand).sum()
    }

    /// Solves the network exactly for population `n` via the convolution
    /// algorithm. `n = 0` yields the degenerate all-zero solution.
    pub fn solve(&self, n: u32) -> MvaSolution {
        let m = self.stations.len();
        if n == 0 {
            return MvaSolution {
                population: 0,
                throughput: 0.0,
                response_time: 0.0,
                station_residence: vec![0.0; m],
                station_queue: vec![0.0; m],
                station_utilization: vec![0.0; m],
            };
        }
        let cap = n as usize;

        // Everything runs in log space: within one factor or G vector the
        // dynamic range can span thousands of orders of magnitude, far
        // beyond f64. Sums stay all-positive (log-sum-exp), so there is no
        // cancellation anywhere.
        //
        // Service factors log f_m(j) = Σ_{i=1..j} ln(V_m/μ_m(i)) for every
        // bounded station; delay stations and the terminal fold into one
        // infinite-server factor log f_0(j) = j·ln(Z + Σ_delay D) − ln j!.
        let bounded: Vec<usize> = (0..m).filter(|&i| !self.stations[i].is_delay()).collect();
        let z_total: f64 = self.think_time
            + self
                .stations
                .iter()
                .filter(|s| s.is_delay())
                .map(|s| s.demand())
                .sum::<f64>();
        let is_factor: Vec<f64> = {
            let mut lf = vec![0.0f64; cap + 1];
            for j in 1..=cap {
                lf[j] = if z_total > 0.0 {
                    lf[j - 1] + z_total.ln() - (j as f64).ln()
                } else {
                    f64::NEG_INFINITY
                };
            }
            lf
        };
        let factors: Vec<Vec<f64>> = bounded
            .iter()
            .map(|&i| {
                let s = &self.stations[i];
                let v = s.visit_ratio();
                let mut lf = vec![0.0f64; cap + 1];
                for j in 1..=cap {
                    let mu = s.rate_at(j as u32).expect("non-delay station has a rate");
                    lf[j] = if v > 0.0 {
                        lf[j - 1] + (v / mu).ln()
                    } else {
                        f64::NEG_INFINITY
                    };
                }
                lf
            })
            .collect();

        // Prefix/suffix convolutions over [IS, bounded stations…] so each
        // station's complement network G^(m) is one extra convolution.
        let k = bounded.len();
        let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(k + 1);
        prefix.push(is_factor.clone());
        for f in &factors {
            let g = log_convolve(prefix.last().expect("non-empty"), f);
            prefix.push(g);
        }
        let g_full = prefix.last().expect("non-empty").clone();
        let mut suffix: Vec<Vec<f64>> = vec![Vec::new(); k + 1];
        let mut acc = log_delta(cap);
        suffix[k] = acc.clone();
        for i in (0..k).rev() {
            acc = log_convolve(&factors[i], &acc);
            suffix[i] = acc.clone();
        }

        // X(N) = G(N-1)/G(N).
        let throughput = (g_full[cap - 1] - g_full[cap]).exp();

        let mut station_queue = vec![0.0; m];
        for (bi, &i) in bounded.iter().enumerate() {
            // Complement of station i: IS ⊛ the other bounded stations.
            let mut compl = prefix[bi].clone();
            if bi < k {
                compl = log_convolve(&compl, &suffix[bi + 1]);
            }
            // Exact marginal p(j|N) ∝ f_i(j)·G^(i)(N-j); normalizing over
            // j removes the shared scale at once.
            let lq: Vec<f64> = (0..=cap).map(|j| factors[bi][j] + compl[cap - j]).collect();
            let mx = lq.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut mass = 0.0;
            let mut weighted = 0.0;
            if mx > f64::NEG_INFINITY {
                for (j, &l) in lq.iter().enumerate() {
                    let q = (l - mx).exp();
                    mass += q;
                    weighted += j as f64 * q;
                }
            }
            station_queue[i] = if mass > 0.0 { weighted / mass } else { 0.0 };
        }
        let station_residence: Vec<f64> = self
            .stations
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.is_delay() {
                    s.demand()
                } else {
                    station_queue[i] / throughput
                }
            })
            .collect();
        for (i, s) in self.stations.iter().enumerate() {
            if s.is_delay() {
                station_queue[i] = throughput * s.demand();
            }
        }
        let station_utilization: Vec<f64> = self
            .stations
            .iter()
            .map(|s| match s.max_rate() {
                // Fraction of the station's peak completion rate in use.
                Some(peak) => throughput * s.visit_ratio() / peak,
                // Delay station: mean busy servers (unbounded capacity).
                None => throughput * s.demand(),
            })
            .collect();
        let response_time = station_residence.iter().sum();
        MvaSolution {
            population: n,
            throughput,
            response_time,
            station_residence,
            station_queue,
            station_utilization,
        }
    }

    /// Solves for every population `1..=n` (the full ramp, one exact pass).
    pub fn solve_ramp(&self, n: u32) -> Vec<MvaSolution> {
        (1..=n).map(|k| self.solve(k)).collect()
    }

    /// Classic asymptotic operational bounds for population `n`.
    pub fn asymptotic_bounds(&self, n: u32) -> AsymptoticBounds {
        let d_total = self.total_demand();
        let light = f64::from(n) / (self.think_time + d_total);
        let cap = self
            .stations
            .iter()
            .filter_map(|s| {
                let peak = s.max_rate()?;
                let v = s.visit_ratio();
                (v > 0.0).then(|| peak / v)
            })
            .fold(f64::INFINITY, f64::min);
        let x_upper = light.min(cap);
        AsymptoticBounds {
            population: n,
            throughput_upper: x_upper,
            response_lower: d_total.max(f64::from(n) / cap - self.think_time),
        }
    }
}

/// Convolves two population-indexed log-space factor vectors (same
/// length) via log-sum-exp: `out[n] = ln Σ_j exp(a[j] + b[n-j])`. The
/// summands are all positive in linear space, so the operation is free of
/// cancellation; staying in logs makes it immune to overflow/underflow at
/// any population.
fn log_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let mut out = vec![f64::NEG_INFINITY; len];
    for (n, slot) in out.iter_mut().enumerate() {
        let mx = (0..=n)
            .map(|j| a[j] + b[n - j])
            .fold(f64::NEG_INFINITY, f64::max);
        if mx > f64::NEG_INFINITY {
            let sum: f64 = (0..=n).map(|j| (a[j] + b[n - j] - mx).exp()).sum();
            *slot = mx + sum.ln();
        }
    }
    out
}

/// The log-space convolution identity: `[0, -inf, -inf, …]`.
fn log_delta(cap: usize) -> Vec<f64> {
    let mut v = vec![f64::NEG_INFINITY; cap + 1];
    v[0] = 0.0;
    v
}

/// The exact MVA solution at one population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvaSolution {
    /// Client population `N`.
    pub population: u32,
    /// System throughput `X(N)` (requests/sec).
    pub throughput: f64,
    /// End-to-end response time `R(N) = Σ V_m·R_m` (seconds, excl. think).
    pub response_time: f64,
    /// Per-station residence per client request, `V_m·R_m` (seconds).
    pub station_residence: Vec<f64>,
    /// Per-station mean population `Q_m = X·V_m·R_m`.
    pub station_queue: Vec<f64>,
    /// Per-station utilization (fraction of peak rate; mean busy servers
    /// for delay stations).
    pub station_utilization: Vec<f64>,
}

/// Operational asymptotic bounds at one population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymptoticBounds {
    /// Client population `N`.
    pub population: u32,
    /// `X(N) ≤ min(N/(Z+ΣD), min_m μ_m^max/V_m)`.
    pub throughput_upper: f64,
    /// `R(N) ≥ max(ΣD, N·V_b/μ_b^max − Z)`.
    pub response_lower: f64,
}

/// Builds the load-dependent rate table for a simulated server whose CPU
/// follows the paper's concurrency law: `n` jobs at the station occupy
/// `min(n, threads)` pool threads, each progressing at `S⁰/S*(min(n,threads))`
/// work-seconds per second, so the completion-rate multiplier is
/// `min(n,c) · S⁰ / S*(min(n,c))` (per mean demand `S⁰`-shaped work).
///
/// `s_star(m)` must return the adjusted service time `S*(m)` for `m ≥ 1`
/// concurrent threads (pass `ServiceLaw::adjusted_service_time`); `s0` is
/// the single-thread service time the per-visit demand is expressed in.
///
/// # Panics
///
/// Panics if `threads == 0`, `max_population == 0`, or the law returns a
/// non-positive adjusted time.
pub fn law_rate_table(
    s0: f64,
    threads: u32,
    max_population: u32,
    s_star: impl Fn(u32) -> f64,
) -> Vec<f64> {
    assert!(threads > 0, "threads must be positive");
    assert!(max_population > 0, "population must be positive");
    assert!(s0.is_finite() && s0 > 0.0, "s0 must be positive");
    (1..=max_population.max(threads))
        .map(|n| {
            let m = n.min(threads);
            let adj = s_star(m);
            assert!(adj.is_finite() && adj > 0.0, "S*({m}) must be positive");
            f64::from(m) * s0 / adj
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct birth–death steady state for a single station + terminal:
    /// states `j = 0..=n` jobs at the station, birth `λ(j) = (n-j)/Z`,
    /// death `μ(j)`. Returns (X, Q, R_station).
    fn birth_death(n: u32, z: f64, mu: impl Fn(u32) -> f64) -> (f64, f64, f64) {
        let n = n as usize;
        let mut pi = vec![1.0f64; n + 1];
        for j in 1..=n {
            let lam = (n - (j - 1)) as f64 / z;
            pi[j] = pi[j - 1] * lam / mu(j as u32);
        }
        let total: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= total;
        }
        let x: f64 = (1..=n).map(|j| pi[j] * mu(j as u32)).sum();
        let q: f64 = (1..=n).map(|j| pi[j] * j as f64).sum();
        (x, q, q / x)
    }

    #[test]
    fn population_one_sees_bare_demands() {
        let net = ClosedNetwork::new(
            vec![
                Station::Delay {
                    visit_ratio: 1.0,
                    service_time: 0.01,
                },
                Station::Queueing {
                    visit_ratio: 2.0,
                    service_time: 0.03,
                    servers: 4,
                },
            ],
            1.0,
        );
        let sol = net.solve(1);
        let d = 0.01 + 2.0 * 0.03;
        assert!((sol.response_time - d).abs() < 1e-12);
        assert!((sol.throughput - 1.0 / (1.0 + d)).abs() < 1e-12);
    }

    #[test]
    fn delay_only_network_is_linear_in_population() {
        let net = ClosedNetwork::new(
            vec![Station::Delay {
                visit_ratio: 3.0,
                service_time: 0.2,
            }],
            2.0,
        );
        for n in [1u32, 5, 40, 200] {
            let sol = net.solve(n);
            let expect = f64::from(n) / (2.0 + 0.6);
            assert!(
                (sol.throughput - expect).abs() / expect < 1e-12,
                "n={n}: {} vs {expect}",
                sol.throughput
            );
            assert!((sol.response_time - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_birth_death_for_mm1_station() {
        let (s, z) = (0.05, 1.0);
        let net = ClosedNetwork::new(
            vec![Station::Queueing {
                visit_ratio: 1.0,
                service_time: s,
                servers: 1,
            }],
            z,
        );
        for n in [1u32, 4, 16, 50] {
            let sol = net.solve(n);
            let (x, q, r) = birth_death(n, z, |_| 1.0 / s);
            assert!(
                (sol.throughput - x).abs() / x < 1e-10,
                "n={n}: X {} vs {x}",
                sol.throughput
            );
            assert!((sol.station_queue[0] - q).abs() / q.max(1e-9) < 1e-9);
            assert!((sol.station_residence[0] - r).abs() / r < 1e-9);
        }
    }

    #[test]
    fn matches_birth_death_for_mmc_station() {
        let (s, z, c) = (0.08, 0.5, 4u32);
        let net = ClosedNetwork::new(
            vec![Station::Queueing {
                visit_ratio: 1.0,
                service_time: s,
                servers: c,
            }],
            z,
        );
        for n in [2u32, 8, 30] {
            let sol = net.solve(n);
            let (x, _, r) = birth_death(n, z, |j| f64::from(j.min(c)) / s);
            assert!(
                (sol.throughput - x).abs() / x < 1e-10,
                "n={n}: X {} vs {x}",
                sol.throughput
            );
            assert!((sol.station_residence[0] - r).abs() / r < 1e-9);
        }
    }

    #[test]
    fn matches_birth_death_for_law_rate_station() {
        // A concurrency-law station: S*(m) = s0 + α(m−1) + βm(m−1).
        let (s0, alpha, beta) = (0.03, 0.004, 2.0e-5);
        let s_star = |m: u32| {
            let m = f64::from(m.max(1));
            s0 + alpha * (m - 1.0) + beta * m * (m - 1.0)
        };
        let threads = 8;
        let n_max = 24u32;
        let rate = law_rate_table(s0, threads, n_max, s_star);
        let z = 0.4;
        let net = ClosedNetwork::new(
            vec![Station::LoadDependent {
                visit_ratio: 1.0,
                service_time: s0,
                rate: rate.clone(),
            }],
            z,
        );
        for n in [3u32, 10, 24] {
            let sol = net.solve(n);
            let (x, _, _) = birth_death(n, z, |j| {
                let m = j.min(threads);
                f64::from(m) / s_star(m)
            });
            assert!(
                (sol.throughput - x).abs() / x < 1e-10,
                "n={n}: X {} vs {x}",
                sol.throughput
            );
        }
    }

    #[test]
    fn multi_station_queues_sum_to_population_minus_terminal() {
        let net = ClosedNetwork::new(
            vec![
                Station::Delay {
                    visit_ratio: 1.0,
                    service_time: 0.02,
                },
                Station::Queueing {
                    visit_ratio: 1.0,
                    service_time: 0.05,
                    servers: 2,
                },
                Station::Queueing {
                    visit_ratio: 2.0,
                    service_time: 0.03,
                    servers: 1,
                },
            ],
            0.7,
        );
        for n in [1u32, 6, 20, 60] {
            let sol = net.solve(n);
            let at_stations: f64 = sol.station_queue.iter().sum();
            let thinking = sol.throughput * 0.7;
            assert!(
                (at_stations + thinking - f64::from(n)).abs() < 1e-6,
                "n={n}: {at_stations} + {thinking}"
            );
        }
    }

    #[test]
    fn throughput_monotone_and_bounded() {
        let net = ClosedNetwork::new(
            vec![
                Station::Delay {
                    visit_ratio: 1.0,
                    service_time: 0.01,
                },
                Station::Queueing {
                    visit_ratio: 1.0,
                    service_time: 0.04,
                    servers: 1,
                },
            ],
            1.0,
        );
        let mut last = 0.0;
        for n in 1..=120u32 {
            let sol = net.solve(n);
            let b = net.asymptotic_bounds(n);
            // Relative tolerance: log-space round trips leave ~1e-13
            // relative jitter on a saturated X (the price of being stable
            // at any station width — see tests/mva_stability.rs).
            assert!(
                sol.throughput >= last * (1.0 - 1e-10),
                "X must be monotone: {} after {last}",
                sol.throughput
            );
            assert!(
                sol.throughput <= b.throughput_upper + 1e-9,
                "n={n}: X {} exceeds bound {}",
                sol.throughput,
                b.throughput_upper
            );
            assert!(sol.response_time >= b.response_lower - 1e-9);
            last = sol.throughput;
        }
        // Saturated: the M/M/1 station caps X at 1/S = 25.
        assert!((net.solve(120).throughput - 25.0).abs() / 25.0 < 1e-3);
    }

    #[test]
    fn bounds_cap_is_min_over_stations() {
        let net = ClosedNetwork::new(
            vec![
                Station::Queueing {
                    visit_ratio: 1.0,
                    service_time: 0.02,
                    servers: 2, // cap 100/s
                },
                Station::Queueing {
                    visit_ratio: 2.0,
                    service_time: 0.03,
                    servers: 1, // cap 1/(2·0.03) ≈ 16.7/s
                },
            ],
            0.5,
        );
        let b = net.asymptotic_bounds(1000);
        assert!((b.throughput_upper - 1.0 / 0.06).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "service time must be positive")]
    fn rejects_zero_service_time() {
        let _ = ClosedNetwork::new(
            vec![Station::Delay {
                visit_ratio: 1.0,
                service_time: 0.0,
            }],
            1.0,
        );
    }

    #[test]
    fn capacity_rescaled_station_matches_faster_service() {
        // A capacity-2 M/M/1 is exactly an M/M/1 at half the service time.
        let fast = Station::queueing_with_capacity(1.0, 0.08, 1, 2.0);
        assert_eq!(
            fast,
            Station::Queueing {
                visit_ratio: 1.0,
                service_time: 0.04,
                servers: 1,
            }
        );
        let net = ClosedNetwork::new(vec![fast], 0.5);
        for n in [1u32, 6, 20] {
            let sol = net.solve(n);
            let (x, _, _) = birth_death(n, 0.5, |_| 1.0 / 0.04);
            assert!((sol.throughput - x).abs() / x < 1e-10, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Station::queueing_with_capacity(1.0, 0.08, 1, 0.0);
    }

    #[test]
    fn law_rate_table_frictionless_is_mmc() {
        let rate = law_rate_table(0.05, 3, 10, |_| 0.05);
        assert_eq!(rate.len(), 10);
        assert!((rate[0] - 1.0).abs() < 1e-12);
        assert!((rate[1] - 2.0).abs() < 1e-12);
        assert!((rate[2] - 3.0).abs() < 1e-12);
        assert!((rate[9] - 3.0).abs() < 1e-12, "caps at the pool size");
    }
}
