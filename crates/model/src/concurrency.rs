//! The concurrency-aware throughput model and its online fitting
//! (paper §III-B/§III-C, Eq. 5–8, and the Table I training procedure).
//!
//! `X(N) = γ·K·N / (S⁰ + α(N−1) + βN(N−1))` relates a bottleneck tier's
//! saturated throughput to its per-server request-processing concurrency
//! `N`. Fitted from `⟨concurrency, throughput⟩` measurements, it yields the
//! optimal per-server concurrency `N* = √((S⁰−α)/β)` — the setting the
//! DCM APP-agent pushes into thread/connection pools.
//!
//! ### Identifiability note
//!
//! The parametrization is scale-degenerate: multiplying `(S⁰, α, β)` by `c`
//! and `γ` by `c` leaves `X(N)` unchanged. Everything DCM acts on — `N*`,
//! `X(N)` predictions, `X_max` — is scale-invariant, so the degeneracy is
//! harmless (the paper's own Table I shows it: `γ = 4.45` for a single
//! MySQL server). [`FitOptions::fix_s0`] pins the scale when a measured
//! single-thread service time is available.

use serde::{Deserialize, Serialize};

use crate::lsq::{levenberg_marquardt, r_squared, FitError, LmOptions};

/// A fitted concurrency-aware throughput model for one tier.
///
/// # Examples
///
/// ```
/// use dcm_model::concurrency::ConcurrencyModel;
///
/// // The paper's Table I Tomcat model.
/// let model = ConcurrencyModel::new(2.84e-2, 9.87e-3, 4.54e-5, 11.03, 1);
/// assert_eq!(model.optimal_concurrency(), 20);
/// let xmax = model.predicted_max_throughput();
/// assert!((xmax - 946.0).abs() < 5.0, "Table I reports 946: {xmax}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyModel {
    /// Single-threaded service time `S⁰` (seconds).
    pub s0: f64,
    /// Linear contention coefficient `α`.
    pub alpha: f64,
    /// Quadratic crosstalk coefficient `β`.
    pub beta: f64,
    /// Scaling correction `γ` (absorbs visit ratios and imbalance).
    pub gamma: f64,
    /// Servers in the tier, `K`.
    pub servers: u32,
}

impl ConcurrencyModel {
    /// Creates a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite, `s0 <= 0`, `gamma <= 0`, or
    /// `alpha`/`beta` negative.
    pub fn new(s0: f64, alpha: f64, beta: f64, gamma: f64, servers: u32) -> Self {
        assert!(s0.is_finite() && s0 > 0.0, "s0 must be positive");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        assert!(beta.is_finite() && beta >= 0.0, "beta must be >= 0");
        assert!(gamma.is_finite() && gamma > 0.0, "gamma must be positive");
        ConcurrencyModel {
            s0,
            alpha,
            beta,
            gamma,
            servers: servers.max(1),
        }
    }

    /// Adjusted service time `S*(N)` (Eq. 5).
    pub fn adjusted_service_time(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        self.s0 + self.alpha * (n - 1.0) + self.beta * n * (n - 1.0)
    }

    /// Predicted saturated throughput at per-server concurrency `n`
    /// (Eq. 7).
    pub fn predict_throughput(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        self.gamma * f64::from(self.servers) * n / self.adjusted_service_time(n)
    }

    /// The continuous optimum `N* = √((S⁰−α)/β)`; `None` when `β = 0` or
    /// `α ≥ S⁰` (no interior optimum).
    pub fn optimal_concurrency_f64(&self) -> Option<f64> {
        if self.beta <= 0.0 || self.alpha >= self.s0 {
            None
        } else {
            Some(((self.s0 - self.alpha) / self.beta).sqrt())
        }
    }

    /// The integer optimal per-server concurrency (≥ 1); `u32::MAX` when
    /// throughput increases monotonically.
    pub fn optimal_concurrency(&self) -> u32 {
        match self.optimal_concurrency_f64() {
            None => u32::MAX,
            Some(n_star) => {
                let lo = (n_star.floor() as u32).max(1);
                let hi = lo + 1;
                if self.predict_throughput(f64::from(hi)) > self.predict_throughput(f64::from(lo)) {
                    hi
                } else {
                    lo
                }
            }
        }
    }

    /// Predicted maximum throughput `Max(X_max)` at `N*` (Eq. 8).
    pub fn predicted_max_throughput(&self) -> f64 {
        self.predict_throughput(f64::from(self.optimal_concurrency().min(1_000_000)))
    }

    /// The same model re-expressed for a different server count `k`
    /// (per-server `N*` is unchanged; aggregate throughput scales).
    pub fn with_servers(&self, k: u32) -> ConcurrencyModel {
        ConcurrencyModel {
            servers: k.max(1),
            ..*self
        }
    }
}

/// Options for [`fit_throughput_curve`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitOptions {
    /// Pin `S⁰` to a measured single-thread service time instead of fitting
    /// it (resolves the γ scale degeneracy).
    pub fix_s0: Option<f64>,
    /// Levenberg–Marquardt controls.
    pub lm: LmOptionsWrapper,
}

/// Wrapper with a [`Default`] so [`FitOptions`] can derive it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LmOptionsWrapper(pub LmOptions);

/// A fitted model with goodness-of-fit diagnostics — the reproduction's
/// Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// The fitted model.
    pub model: ConcurrencyModel,
    /// Coefficient of determination against the training data.
    pub r_squared: f64,
    /// LM iterations used.
    pub iterations: usize,
    /// Whether LM met its tolerance.
    pub converged: bool,
}

/// Fits the throughput model to `⟨per-server concurrency, system
/// throughput⟩` samples from a tier with `servers` servers.
///
/// Parameters are optimized in log-space, which enforces positivity without
/// constrained optimization.
///
/// # Errors
///
/// [`FitError`] when there are fewer samples than free parameters or the
/// optimizer cannot make progress.
///
/// # Examples
///
/// ```
/// use dcm_model::concurrency::{fit_throughput_curve, ConcurrencyModel, FitOptions};
///
/// // Generate noiseless data from a known model and recover it.
/// let truth = ConcurrencyModel::new(0.03, 0.01, 5e-5, 1.0, 1);
/// let data: Vec<(f64, f64)> = (1..=100)
///     .map(|n| (n as f64, truth.predict_throughput(n as f64)))
///     .collect();
/// let report = fit_throughput_curve(&data, 1, FitOptions::default()).unwrap();
/// assert!(report.r_squared > 0.999);
/// assert_eq!(report.model.optimal_concurrency(), truth.optimal_concurrency());
/// ```
pub fn fit_throughput_curve(
    data: &[(f64, f64)],
    servers: u32,
    options: FitOptions,
) -> Result<FitReport, FitError> {
    let clean: Vec<(f64, f64)> = data
        .iter()
        .copied()
        .filter(|&(n, x)| n >= 1.0 && x > 0.0 && n.is_finite() && x.is_finite())
        .collect();
    let k = f64::from(servers.max(1));

    // Initial guess. In a saturated closed loop X(1) = γ·K/S⁰; anchor the
    // scale there (γ₀ = 1), put the initial knee at the empirical argmax.
    let x_at_min_n = clean
        .iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
        .map(|&(n, x)| x / n.max(1.0))
        .unwrap_or(1.0);
    let s0_guess = options.fix_s0.unwrap_or_else(|| (k / x_at_min_n).max(1e-6));
    let peak_n = clean
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|&(n, _)| n.max(2.0))
        .unwrap_or(16.0);
    let alpha_guess = s0_guess * 0.05;
    let beta_guess = (s0_guess - alpha_guess) / (peak_n * peak_n);

    // Log-space parameter vector; s0 is included only when not fixed.
    let mut initial = vec![alpha_guess.ln(), beta_guess.ln(), 0.0f64 /* ln γ */];
    if options.fix_s0.is_none() {
        initial.push(s0_guess.ln());
    }
    let fixed_s0 = options.fix_s0;

    let predict = move |p: &[f64], n: f64| -> f64 {
        let alpha = p[0].exp();
        let beta = p[1].exp();
        let gamma = p[2].exp();
        let s0 = fixed_s0.unwrap_or_else(|| p[3].exp());
        let n = n.max(1.0);
        gamma * k * n / (s0 + alpha * (n - 1.0) + beta * n * (n - 1.0))
    };

    let observations = clean.clone();
    let result = levenberg_marquardt(
        &initial,
        observations.len(),
        |p, out| {
            for (i, &(n, x)) in observations.iter().enumerate() {
                out[i] = predict(p, n) - x;
            }
        },
        options.lm.0,
    )?;

    let p = &result.params;
    let model = ConcurrencyModel::new(
        fixed_s0.unwrap_or_else(|| p[3].exp()),
        p[0].exp(),
        p[1].exp(),
        p[2].exp(),
        servers.max(1),
    );
    let observed: Vec<f64> = clean.iter().map(|&(_, x)| x).collect();
    let predicted: Vec<f64> = clean
        .iter()
        .map(|&(n, _)| model.predict_throughput(n))
        .collect();
    Ok(FitReport {
        model,
        r_squared: r_squared(&observed, &predicted),
        iterations: result.iterations,
        converged: result.converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> ConcurrencyModel {
        // The calibrated MySQL ground truth (per-server, γ=1).
        ConcurrencyModel::new(5.89e-2, 2.0e-3, 4.3904e-5, 1.0, 1)
    }

    #[test]
    fn paper_table1_values_reproduce() {
        let tomcat = ConcurrencyModel::new(2.84e-2, 9.87e-3, 4.54e-5, 11.03, 1);
        assert_eq!(tomcat.optimal_concurrency(), 20);
        assert!((tomcat.predicted_max_throughput() - 946.0).abs() < 5.0);

        let mysql = ConcurrencyModel::new(7.19e-3, 5.04e-3, 1.65e-6, 4.45, 1);
        assert_eq!(mysql.optimal_concurrency(), 36);
        assert!((mysql.predicted_max_throughput() - 865.0).abs() < 5.0);
    }

    #[test]
    fn recovers_planted_model_noiseless() {
        let truth = truth();
        let data: Vec<(f64, f64)> = (1..=120)
            .map(|n| (f64::from(n), truth.predict_throughput(f64::from(n))))
            .collect();
        let report = fit_throughput_curve(&data, 1, FitOptions::default()).unwrap();
        assert!(report.r_squared > 0.9999, "r2 {}", report.r_squared);
        assert_eq!(
            report.model.optimal_concurrency(),
            truth.optimal_concurrency()
        );
        let xmax = report.model.predicted_max_throughput();
        let expected = truth.predicted_max_throughput();
        assert!((xmax - expected).abs() / expected < 0.01);
    }

    #[test]
    fn recovers_under_multiplicative_noise() {
        let truth = truth();
        let data: Vec<(f64, f64)> = (1..=150)
            .map(|n| {
                let noise = 1.0 + 0.03 * ((n as f64) * 1.7).sin();
                (f64::from(n), truth.predict_throughput(f64::from(n)) * noise)
            })
            .collect();
        let report = fit_throughput_curve(&data, 1, FitOptions::default()).unwrap();
        assert!(report.r_squared > 0.99, "r2 {}", report.r_squared);
        let n_star = report.model.optimal_concurrency();
        assert!(
            (34..=38).contains(&n_star),
            "knee {n_star} should be near 36"
        );
    }

    #[test]
    fn fixed_s0_pins_the_scale() {
        let truth = truth();
        let data: Vec<(f64, f64)> = (1..=100)
            .map(|n| (f64::from(n), truth.predict_throughput(f64::from(n))))
            .collect();
        let report = fit_throughput_curve(
            &data,
            1,
            FitOptions {
                fix_s0: Some(truth.s0),
                ..FitOptions::default()
            },
        )
        .unwrap();
        assert!((report.model.alpha - truth.alpha).abs() / truth.alpha < 0.05);
        assert!((report.model.beta - truth.beta).abs() / truth.beta < 0.05);
        assert!((report.model.gamma - 1.0).abs() < 0.05);
    }

    #[test]
    fn multi_server_prediction_scales() {
        let m1 = truth();
        let m2 = m1.with_servers(2);
        assert_eq!(m2.optimal_concurrency(), m1.optimal_concurrency());
        let x1 = m1.predicted_max_throughput();
        let x2 = m2.predicted_max_throughput();
        assert!((x2 - 2.0 * x1).abs() < 1e-9);
    }

    #[test]
    fn degenerate_models_report_no_interior_optimum() {
        let flat = ConcurrencyModel::new(0.01, 0.0, 0.0, 1.0, 1);
        assert_eq!(flat.optimal_concurrency_f64(), None);
        assert_eq!(flat.optimal_concurrency(), u32::MAX);
    }

    #[test]
    fn fit_rejects_insufficient_data() {
        let data = [(1.0, 100.0), (2.0, 150.0)];
        let err = fit_throughput_curve(&data, 1, FitOptions::default()).unwrap_err();
        assert!(matches!(err, FitError::TooFewObservations { .. }));
    }

    #[test]
    fn fit_filters_invalid_samples() {
        let truth = truth();
        let mut data: Vec<(f64, f64)> = (1..=80)
            .map(|n| (f64::from(n), truth.predict_throughput(f64::from(n))))
            .collect();
        data.push((0.0, -5.0));
        data.push((f64::NAN, 10.0));
        let report = fit_throughput_curve(&data, 1, FitOptions::default()).unwrap();
        assert!(report.r_squared > 0.999);
    }
}
