//! Operational queueing laws (paper §III-A, Eq. 1–4).
//!
//! Utilization Law (`U = X·S`), Forced Flow Law (`X_m = X·V_m`), Little's
//! Law, and the bottleneck analysis built on them: the tier with the
//! largest per-server service demand `V_m·S_m/K_m` saturates first and caps
//! system throughput at `X_max = γ·K_b/(V_b·S_b)`.

use serde::{Deserialize, Serialize};

/// Utilization Law: `U = X·S` — utilization from throughput and mean
/// service time.
pub fn utilization(throughput: f64, service_time: f64) -> f64 {
    throughput * service_time
}

/// Forced Flow Law: `X_m = X·V_m` — a tier's local throughput from system
/// throughput and visit ratio.
pub fn forced_flow(system_throughput: f64, visit_ratio: f64) -> f64 {
    system_throughput * visit_ratio
}

/// Little's Law: `N = X·R` — mean population from throughput and residence
/// time.
pub fn littles_law(throughput: f64, residence_time: f64) -> f64 {
    throughput * residence_time
}

/// Interactive Response Time Law: `R = N/X − Z` for a closed system of `n`
/// users with think time `z`.
pub fn interactive_response_time(n_users: f64, throughput: f64, think_time: f64) -> f64 {
    n_users / throughput - think_time
}

/// One tier's operational parameters for bottleneck analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierDemand {
    /// End-to-end visit ratio `V_m` (sub-requests per client request).
    pub visit_ratio: f64,
    /// Mean per-visit service time `S_m` (seconds).
    pub service_time: f64,
    /// Servers in the tier, `K_m`.
    pub servers: u32,
}

impl TierDemand {
    /// Total service demand `D_m = V_m·S_m` per client request.
    pub fn demand(&self) -> f64 {
        self.visit_ratio * self.service_time
    }

    /// Demand per server, the quantity that saturates first.
    pub fn demand_per_server(&self) -> f64 {
        self.demand() / f64::from(self.servers.max(1))
    }
}

/// Result of a bottleneck analysis over the tier chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckAnalysis {
    /// Index of the bottleneck tier.
    pub bottleneck: usize,
    /// Predicted maximum system throughput `γ·K_b/(V_b·S_b)` (Eq. 4).
    pub max_throughput: f64,
    /// Per-tier utilization at that maximum (`U_m = X·D_m/K_m`).
    pub utilizations: Vec<f64>,
}

/// Finds the bottleneck tier and the throughput ceiling (Eq. 2–4) with
/// scaling-correction factor `gamma` (1.0 for ideal linear scaling).
///
/// # Panics
///
/// Panics if `tiers` is empty or any demand is non-positive.
///
/// # Examples
///
/// ```
/// use dcm_model::laws::{analyze_bottleneck, TierDemand};
///
/// let tiers = [
///     TierDemand { visit_ratio: 1.0, service_time: 0.0006, servers: 1 },
///     TierDemand { visit_ratio: 1.0, service_time: 0.0284, servers: 1 },
///     TierDemand { visit_ratio: 2.0, service_time: 0.0072, servers: 1 },
/// ];
/// let analysis = analyze_bottleneck(&tiers, 1.0);
/// assert_eq!(analysis.bottleneck, 1); // Tomcat: largest V·S
/// assert!((analysis.max_throughput - 1.0 / 0.0284).abs() < 1e-9);
/// ```
pub fn analyze_bottleneck(tiers: &[TierDemand], gamma: f64) -> BottleneckAnalysis {
    assert!(!tiers.is_empty(), "need at least one tier");
    for t in tiers {
        assert!(
            t.demand() > 0.0 && t.demand().is_finite(),
            "tier demands must be positive"
        );
    }
    let bottleneck = tiers
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.demand_per_server()
                .partial_cmp(&b.demand_per_server())
                .expect("finite demands")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    let b = &tiers[bottleneck];
    let max_throughput = gamma * f64::from(b.servers.max(1)) / b.demand();
    let utilizations = tiers
        .iter()
        .map(|t| max_throughput * t.demand_per_server())
        .collect();
    BottleneckAnalysis {
        bottleneck,
        max_throughput,
        utilizations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_laws() {
        assert_eq!(utilization(100.0, 0.005), 0.5);
        assert_eq!(forced_flow(50.0, 2.0), 100.0);
        assert_eq!(littles_law(10.0, 0.5), 5.0);
        assert!((interactive_response_time(100.0, 25.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_shifts_with_scaling() {
        // 1/1/1: Tomcat (28.4 ms) dominates MySQL (2×7.2 = 14.4 ms).
        let mut tiers = vec![
            TierDemand {
                visit_ratio: 1.0,
                service_time: 0.0006,
                servers: 1,
            },
            TierDemand {
                visit_ratio: 1.0,
                service_time: 0.0284,
                servers: 1,
            },
            TierDemand {
                visit_ratio: 2.0,
                service_time: 0.0072,
                servers: 1,
            },
        ];
        assert_eq!(analyze_bottleneck(&tiers, 1.0).bottleneck, 1);
        // 1/2/1: two Tomcats halve the per-server demand; MySQL takes over.
        tiers[1].servers = 2;
        let analysis = analyze_bottleneck(&tiers, 1.0);
        assert_eq!(analysis.bottleneck, 2);
        assert!((analysis.max_throughput - 1.0 / 0.0144).abs() < 1e-9);
    }

    #[test]
    fn utilizations_peak_at_bottleneck() {
        let tiers = [
            TierDemand {
                visit_ratio: 1.0,
                service_time: 0.001,
                servers: 1,
            },
            TierDemand {
                visit_ratio: 1.0,
                service_time: 0.010,
                servers: 1,
            },
        ];
        let analysis = analyze_bottleneck(&tiers, 1.0);
        assert!((analysis.utilizations[1] - 1.0).abs() < 1e-12);
        assert!(analysis.utilizations[0] < 0.2);
    }

    #[test]
    fn gamma_scales_the_ceiling() {
        let tiers = [TierDemand {
            visit_ratio: 1.0,
            service_time: 0.01,
            servers: 2,
        }];
        let ideal = analyze_bottleneck(&tiers, 1.0).max_throughput;
        let corrected = analyze_bottleneck(&tiers, 0.9).max_throughput;
        assert!((ideal - 200.0).abs() < 1e-9);
        assert!((corrected - 180.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_demand_rejected() {
        let _ = analyze_bottleneck(
            &[TierDemand {
                visit_ratio: 0.0,
                service_time: 0.01,
                servers: 1,
            }],
            1.0,
        );
    }
}
