//! Residual-bootstrap uncertainty for the fitted concurrency model.
//!
//! The controller acts on `N*`; if the training data barely constrain it
//! (the dome's peak is flat), the operator should know. The residual
//! bootstrap refits the model on `B` resampled datasets — original
//! predictions plus residuals drawn with replacement — and reports
//! percentile intervals for `N*` and the peak-throughput prediction.

use dcm_sim::rng::SimRng;

use crate::concurrency::{fit_throughput_curve, ConcurrencyModel, FitOptions};
use crate::lsq::FitError;

/// Bootstrap summary for one fitted model.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapReport {
    /// The point-estimate model the bootstrap was seeded with.
    pub model: ConcurrencyModel,
    /// Bootstrap replicates of `N*`, sorted ascending.
    pub n_star_samples: Vec<f64>,
    /// Bootstrap replicates of the predicted peak throughput, sorted.
    pub x_max_samples: Vec<f64>,
    /// Resamples that failed to fit (excluded from the samples).
    pub failed: usize,
}

impl BootstrapReport {
    /// Percentile interval `[lo, hi]` for `N*` (e.g. `0.95` → 2.5th/97.5th
    /// percentiles); `None` if no replicate converged.
    pub fn n_star_interval(&self, confidence: f64) -> Option<(f64, f64)> {
        percentile_interval(&self.n_star_samples, confidence)
    }

    /// Percentile interval for the predicted maximum throughput.
    pub fn x_max_interval(&self, confidence: f64) -> Option<(f64, f64)> {
        percentile_interval(&self.x_max_samples, confidence)
    }
}

fn percentile_interval(sorted: &[f64], confidence: f64) -> Option<(f64, f64)> {
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must be in [0,1)"
    );
    if sorted.is_empty() {
        return None;
    }
    let tail = (1.0 - confidence) / 2.0;
    let n = sorted.len();
    let lo_idx = ((tail * n as f64) as usize).min(n - 1);
    let hi_idx = (((1.0 - tail) * n as f64) as usize).min(n - 1);
    Some((sorted[lo_idx], sorted[hi_idx]))
}

/// Runs a residual bootstrap of `fit_throughput_curve` with `replicates`
/// resamples.
///
/// # Errors
///
/// Returns the initial fit's [`FitError`] if even the point estimate fails.
pub fn bootstrap_fit(
    data: &[(f64, f64)],
    servers: u32,
    replicates: usize,
    seed: u64,
) -> Result<BootstrapReport, FitError> {
    let point = fit_throughput_curve(data, servers, FitOptions::default())?;
    let residuals: Vec<f64> = data
        .iter()
        .map(|&(n, x)| x - point.model.predict_throughput(n))
        .collect();
    let mut rng = SimRng::seed_from(seed);
    let mut n_star_samples = Vec::with_capacity(replicates);
    let mut x_max_samples = Vec::with_capacity(replicates);
    let mut failed = 0;
    for _ in 0..replicates {
        let resampled: Vec<(f64, f64)> = data
            .iter()
            .map(|&(n, _)| {
                let idx = (rng.next_f64() * residuals.len() as f64) as usize % residuals.len();
                let y = point.model.predict_throughput(n) + residuals[idx];
                (n, y.max(1e-9))
            })
            .collect();
        match fit_throughput_curve(&resampled, servers, FitOptions::default()) {
            Ok(report) => {
                n_star_samples.push(f64::from(report.model.optimal_concurrency().min(1_000_000)));
                x_max_samples.push(report.model.predicted_max_throughput());
            }
            Err(_) => failed += 1,
        }
    }
    n_star_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    x_max_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Ok(BootstrapReport {
        model: point.model,
        n_star_samples,
        x_max_samples,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_dome(noise: f64) -> Vec<(f64, f64)> {
        let truth = ConcurrencyModel::new(0.03, 0.008, 5.5e-5, 1.0, 1);
        (1..=80)
            .map(|n| {
                let n = f64::from(n);
                let wiggle = 1.0 + noise * (n * 2.13).sin();
                (n, truth.predict_throughput(n) * wiggle)
            })
            .collect()
    }

    #[test]
    fn noiseless_data_gives_tight_intervals() {
        let report = bootstrap_fit(&noisy_dome(0.0), 1, 60, 7).expect("fits");
        let (lo, hi) = report.n_star_interval(0.95).unwrap();
        assert!(
            hi - lo < 2.0,
            "noiseless N* interval should be tight: [{lo}, {hi}]"
        );
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn noisy_data_widens_intervals() {
        let tight = bootstrap_fit(&noisy_dome(0.01), 1, 60, 7).expect("fits");
        let loose = bootstrap_fit(&noisy_dome(0.10), 1, 60, 7).expect("fits");
        let w = |r: &BootstrapReport| {
            let (lo, hi) = r.n_star_interval(0.95).unwrap();
            hi - lo
        };
        assert!(
            w(&loose) > w(&tight),
            "more noise → wider N* interval ({} vs {})",
            w(&loose),
            w(&tight)
        );
    }

    #[test]
    fn interval_contains_the_point_estimate() {
        let report = bootstrap_fit(&noisy_dome(0.05), 1, 80, 11).expect("fits");
        let n_star = f64::from(report.model.optimal_concurrency());
        let (lo, hi) = report.n_star_interval(0.90).unwrap();
        assert!(
            lo <= n_star && n_star <= hi,
            "N* {n_star} outside [{lo}, {hi}]"
        );
        let (xlo, xhi) = report.x_max_interval(0.90).unwrap();
        let x = report.model.predicted_max_throughput();
        assert!(xlo <= x * 1.05 && xhi >= x * 0.95);
    }

    #[test]
    fn percentile_interval_edges() {
        assert_eq!(percentile_interval(&[], 0.95), None);
        assert_eq!(percentile_interval(&[3.0], 0.95), Some((3.0, 3.0)));
    }
}
