//! Nonlinear least squares: Levenberg–Marquardt with finite-difference
//! Jacobians, plus goodness-of-fit helpers.
//!
//! This is the "Least-Square Fitting method" of the paper's §V-A, grown a
//! damping loop so it is robust to the (mildly degenerate) four-parameter
//! throughput model.

use std::fmt;

use crate::linalg::{solve, SolveError};

/// Error from a fitting run.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer observations than parameters.
    TooFewObservations {
        /// Number of observations supplied.
        observations: usize,
        /// Number of free parameters.
        parameters: usize,
    },
    /// The model produced a non-finite residual at the initial guess.
    NonFiniteResidual,
    /// The damped normal equations stayed singular.
    Singular,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewObservations {
                observations,
                parameters,
            } => write!(
                f,
                "{observations} observations cannot constrain {parameters} parameters"
            ),
            FitError::NonFiniteResidual => write!(f, "model returned non-finite residuals"),
            FitError::Singular => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<SolveError> for FitError {
    fn from(_: SolveError) -> Self {
        FitError::Singular
    }
}

/// Configuration for [`levenberg_marquardt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmOptions {
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Stop when the relative SSE improvement falls below this.
    pub tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iterations: 200,
            tolerance: 1e-12,
            initial_lambda: 1e-3,
        }
    }
}

/// Result of a Levenberg–Marquardt run.
#[derive(Debug, Clone, PartialEq)]
pub struct LmResult {
    /// The fitted parameter vector.
    pub params: Vec<f64>,
    /// Final sum of squared residuals.
    pub sse: f64,
    /// Outer iterations used.
    pub iterations: usize,
    /// Whether the tolerance criterion was met (vs. iteration cap).
    pub converged: bool,
}

/// Minimizes `Σ residual_i(θ)²` starting from `initial`.
///
/// `residuals(θ, out)` must fill `out` with one residual per observation.
/// The Jacobian is approximated by forward differences.
///
/// # Errors
///
/// See [`FitError`].
pub fn levenberg_marquardt(
    initial: &[f64],
    n_observations: usize,
    mut residuals: impl FnMut(&[f64], &mut [f64]),
    options: LmOptions,
) -> Result<LmResult, FitError> {
    let n_params = initial.len();
    if n_observations < n_params {
        return Err(FitError::TooFewObservations {
            observations: n_observations,
            parameters: n_params,
        });
    }

    let mut params = initial.to_vec();
    let mut r = vec![0.0; n_observations];
    residuals(&params, &mut r);
    let mut sse: f64 = r.iter().map(|v| v * v).sum();
    if !sse.is_finite() {
        return Err(FitError::NonFiniteResidual);
    }

    let mut lambda = options.initial_lambda;
    let mut jac = vec![0.0; n_observations * n_params];
    let mut r_perturbed = vec![0.0; n_observations];
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..options.max_iterations {
        iterations = iter + 1;
        // Forward-difference Jacobian.
        for j in 0..n_params {
            let h = (params[j].abs() * 1e-6).max(1e-10);
            let mut bumped = params.clone();
            bumped[j] += h;
            residuals(&bumped, &mut r_perturbed);
            for i in 0..n_observations {
                jac[i * n_params + j] = (r_perturbed[i] - r[i]) / h;
            }
        }

        // Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = -Jᵀr.
        let mut jtj = vec![0.0; n_params * n_params];
        let mut jtr = vec![0.0; n_params];
        for i in 0..n_observations {
            for a in 0..n_params {
                let ja = jac[i * n_params + a];
                jtr[a] -= ja * r[i];
                for b in 0..n_params {
                    jtj[a * n_params + b] += ja * jac[i * n_params + b];
                }
            }
        }

        // Inner loop: raise λ until a step improves SSE.
        let mut stepped = false;
        for _ in 0..30 {
            let mut damped = jtj.clone();
            for a in 0..n_params {
                let d = jtj[a * n_params + a];
                damped[a * n_params + a] = d + lambda * d.max(1e-12);
            }
            let delta = match solve(&damped, &jtr) {
                Ok(d) => d,
                Err(_) => {
                    lambda *= 10.0;
                    continue;
                }
            };
            let candidate: Vec<f64> = params
                .iter()
                .zip(delta.iter())
                .map(|(p, d)| p + d)
                .collect();
            residuals(&candidate, &mut r_perturbed);
            let candidate_sse: f64 = r_perturbed.iter().map(|v| v * v).sum();
            if candidate_sse.is_finite() && candidate_sse < sse {
                let improvement = (sse - candidate_sse) / sse.max(1e-300);
                params = candidate;
                std::mem::swap(&mut r, &mut r_perturbed);
                sse = candidate_sse;
                lambda = (lambda * 0.3).max(1e-12);
                stepped = true;
                if improvement < options.tolerance {
                    converged = true;
                }
                break;
            }
            lambda *= 10.0;
        }
        if !stepped {
            // No improving step found at any damping: local minimum.
            converged = true;
        }
        if converged {
            break;
        }
    }

    Ok(LmResult {
        params,
        sse,
        iterations,
        converged,
    })
}

/// Coefficient of determination `R² = 1 − SS_res/SS_tot` for predictions
/// against observations. Returns 1.0 for a perfect fit of constant data.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(observed.len(), predicted.len(), "length mismatch");
    if observed.is_empty() {
        return 1.0;
    }
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted.iter())
        .map(|(y, f)| (y - f).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Ordinary linear regression `y ≈ a + b·x`; returns `(a, b)`.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 points.
pub fn linear_regression(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exponential_decay() {
        // y = 3·exp(-0.7 x) sampled noiselessly.
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * (-0.7 * x).exp()).collect();
        let xs2 = xs.clone();
        let result = levenberg_marquardt(
            &[1.0, -0.1],
            ys.len(),
            |p, out| {
                for (i, x) in xs2.iter().enumerate() {
                    out[i] = p[0] * (p[1] * x).exp() - ys[i];
                }
            },
            LmOptions::default(),
        )
        .unwrap();
        assert!((result.params[0] - 3.0).abs() < 1e-6, "{:?}", result.params);
        assert!((result.params[1] + 0.7).abs() < 1e-6, "{:?}", result.params);
        assert!(result.sse < 1e-12);
    }

    #[test]
    fn fits_with_noise_and_reports_r2() {
        // Deterministic pseudo-noise so the test is stable.
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 1.0 + ((i as f64 * 2.39).sin()) * 0.5)
            .collect();
        let xs2 = xs.clone();
        let result = levenberg_marquardt(
            &[0.0, 1.0],
            ys.len(),
            |p, out| {
                for (i, x) in xs2.iter().enumerate() {
                    out[i] = p[0] + p[1] * x - ys[i];
                }
            },
            LmOptions::default(),
        )
        .unwrap();
        let predicted: Vec<f64> = xs
            .iter()
            .map(|x| result.params[0] + result.params[1] * x)
            .collect();
        let r2 = r_squared(&ys, &predicted);
        assert!(r2 > 0.999, "r2 {r2}");
        assert!((result.params[1] - 2.0).abs() < 0.01);
    }

    #[test]
    fn too_few_observations_is_an_error() {
        let err =
            levenberg_marquardt(&[1.0, 2.0, 3.0], 2, |_, _| {}, LmOptions::default()).unwrap_err();
        assert!(matches!(err, FitError::TooFewObservations { .. }));
    }

    #[test]
    fn non_finite_initial_residual_is_an_error() {
        let err = levenberg_marquardt(
            &[0.0],
            3,
            |p, out| {
                for o in out.iter_mut() {
                    *o = 1.0 / p[0];
                }
            },
            LmOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, FitError::NonFiniteResidual);
    }

    #[test]
    fn r_squared_edge_cases() {
        assert_eq!(r_squared(&[], &[]), 1.0);
        assert_eq!(r_squared(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r_squared(&[2.0, 2.0], &[1.0, 3.0]), 0.0);
        // Predicting the mean gives R² = 0.
        let r2 = r_squared(&[1.0, 2.0, 3.0], &[2.0, 2.0, 2.0]);
        assert!(r2.abs() < 1e-12);
    }

    #[test]
    fn linear_regression_recovers_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (a, b) = linear_regression(&x, &y);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }
}
