//! Minimal dense linear algebra for the model fitter: square-system solve
//! via Gaussian elimination with partial pivoting.

use std::fmt;

/// Error solving a linear system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (or numerically so).
    Singular,
    /// Dimensions do not match.
    DimensionMismatch,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular"),
            SolveError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves `A·x = b` for square `A` (row-major, `n×n`), destroying copies of
/// the inputs. Returns `x`.
///
/// # Errors
///
/// [`SolveError::DimensionMismatch`] when shapes disagree,
/// [`SolveError::Singular`] when elimination hits a ~zero pivot.
///
/// # Examples
///
/// ```
/// use dcm_model::linalg::solve;
///
/// // 2x + y = 5; x - y = 1  →  x = 2, y = 1
/// let x = solve(&[2.0, 1.0, 1.0, -1.0], &[5.0, 1.0]).unwrap();
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// ```
pub fn solve(a: &[f64], b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = b.len();
    if a.len() != n * n {
        return Err(SolveError::DimensionMismatch);
    }
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest |value| in this column at or below the
        // diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i * n + col]
                    .abs()
                    .partial_cmp(&m[j * n + col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        let pivot = m[pivot_row * n + col];
        if pivot.abs() < 1e-300 || !pivot.is_finite() {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = m[row * n + col] / m[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        let diag = m[row * n + row];
        if diag.abs() < 1e-300 {
            return Err(SolveError::Singular);
        }
        x[row] = acc / diag;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let x = solve(&[1.0, 0.0, 0.0, 1.0], &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_3x3_with_pivoting() {
        // Requires a row swap (zero leading pivot).
        #[rustfmt::skip]
        let a = [
            0.0, 2.0, 1.0,
            1.0, 1.0, 1.0,
            3.0, 0.0, 1.0,
        ];
        // Solution x = (1, 2, 3): b = (7, 6, 6).
        let x = solve(&a, &[7.0, 6.0, 6.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let err = solve(&[1.0, 2.0, 2.0, 4.0], &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, SolveError::Singular);
    }

    #[test]
    fn detects_dimension_mismatch() {
        assert_eq!(
            solve(&[1.0, 2.0, 3.0], &[1.0, 2.0]),
            Err(SolveError::DimensionMismatch)
        );
    }

    #[test]
    fn random_system_roundtrip() {
        // Build a well-conditioned system and verify A·x ≈ b.
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = ((i * 7 + j * 3 + 1) % 11) as f64 + if i == j { 10.0 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let x = solve(&a, &b).unwrap();
        for i in 0..n {
            let dot: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((dot - b[i]).abs() < 1e-9, "row {i}: {dot} vs {}", b[i]);
        }
    }
}
