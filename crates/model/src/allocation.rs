//! Turning fitted models into concrete soft-resource allocations — the
//! arithmetic behind the APP-agent's decisions (paper §IV-B).
//!
//! * The **app tier's thread pools** directly cap its per-server
//!   concurrency: each server gets `⌈N*_app · headroom⌉` threads.
//! * The **db tier's concurrency** can only be capped upstream: the total
//!   budget `N*_db · K_db · headroom` is split evenly across the app
//!   servers' connection pools.

use serde::{Deserialize, Serialize};

use crate::concurrency::ConcurrencyModel;

/// A computed soft allocation for the app tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftAllocation {
    /// Thread-pool size per app server.
    pub app_threads: u32,
    /// DB connection-pool size per app server.
    pub db_conns_per_app: u32,
}

impl SoftAllocation {
    /// Total DB-side concurrency this allocation admits.
    pub fn total_db_concurrency(&self, k_app: u32) -> u32 {
        self.db_conns_per_app.saturating_mul(k_app.max(1))
    }
}

/// Computes the optimal allocation for `k_app` app servers and `k_db` db
/// servers, with `headroom` slack over the theoretical optima (the paper:
/// configured pools "should be larger than this theoretical value because
/// not all threads will be in Active state" — typically 1.1; values below
/// 1 deliberately under-provision, e.g. for sensitivity studies).
///
/// Models whose optimum is unbounded (frictionless) are clamped to
/// 1 000 000 before the headroom multiply.
///
/// # Panics
///
/// Panics if `headroom <= 0` or is not finite.
///
/// # Examples
///
/// ```
/// use dcm_model::allocation::optimal_soft_allocation;
/// use dcm_model::concurrency::ConcurrencyModel;
///
/// let app = ConcurrencyModel::new(0.0284, 0.0160, 7.0e-5, 1.0, 1);  // N* ≈ 13
/// let db = ConcurrencyModel::new(0.0296, 0.0045, 1.93e-5, 1.0, 1);  // N* = 36
/// let alloc = optimal_soft_allocation(&app, &db, 2, 1, 1.1);
/// assert_eq!(alloc.db_conns_per_app, 20); // ceil(36·1·1.1 / 2)
/// assert_eq!(alloc.total_db_concurrency(2), 40);
/// ```
pub fn optimal_soft_allocation(
    app_model: &ConcurrencyModel,
    db_model: &ConcurrencyModel,
    k_app: u32,
    k_db: u32,
    headroom: f64,
) -> SoftAllocation {
    assert!(
        headroom.is_finite() && headroom > 0.0,
        "headroom must be positive"
    );
    let k_app = f64::from(k_app.max(1));
    let k_db = f64::from(k_db.max(1));
    let n_app = f64::from(app_model.optimal_concurrency().min(1_000_000));
    let n_db = f64::from(db_model.optimal_concurrency().min(1_000_000));
    let app_threads = (n_app * headroom).ceil().max(1.0) as u32;
    let db_conns_per_app = ((n_db * k_db * headroom) / k_app).ceil().max(1.0) as u32;
    SoftAllocation {
        app_threads,
        db_conns_per_app,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> ConcurrencyModel {
        ConcurrencyModel::new(0.0284, 0.016, 7.0e-5, 1.0, 1) // knee ~13
    }

    fn db() -> ConcurrencyModel {
        ConcurrencyModel::new(2.95501e-2, 4.53985e-3, 1.9298e-5, 1.0, 1) // knee 36
    }

    #[test]
    fn paper_fig5_initial_allocation() {
        // 1/1/1 with 1.1 headroom: conns = ceil(36·1.1) = 40, the paper's
        // initial Fig. 5 value.
        let alloc = optimal_soft_allocation(&app(), &db(), 1, 1, 1.1);
        assert_eq!(alloc.db_conns_per_app, 40);
    }

    #[test]
    fn conns_split_across_app_servers() {
        let one = optimal_soft_allocation(&app(), &db(), 1, 1, 1.0);
        let two = optimal_soft_allocation(&app(), &db(), 2, 1, 1.0);
        let four = optimal_soft_allocation(&app(), &db(), 4, 1, 1.0);
        assert_eq!(one.db_conns_per_app, 36);
        assert_eq!(two.db_conns_per_app, 18);
        assert_eq!(four.db_conns_per_app, 9);
        // Threads per server are independent of K.
        assert_eq!(one.app_threads, two.app_threads);
    }

    #[test]
    fn budget_scales_with_db_servers() {
        let k1 = optimal_soft_allocation(&app(), &db(), 2, 1, 1.0);
        let k2 = optimal_soft_allocation(&app(), &db(), 2, 2, 1.0);
        assert_eq!(k2.db_conns_per_app, 2 * k1.db_conns_per_app);
        assert_eq!(k2.total_db_concurrency(2), 2 * k1.total_db_concurrency(2));
    }

    #[test]
    fn ceil_never_admits_less_than_one() {
        // 36 conns split over 100 app servers still grants 1 each.
        let alloc = optimal_soft_allocation(&app(), &db(), 100, 1, 1.0);
        assert_eq!(alloc.db_conns_per_app, 1);
    }

    #[test]
    fn frictionless_models_are_clamped() {
        let flat = ConcurrencyModel::new(0.01, 0.0, 0.0, 1.0, 1);
        let alloc = optimal_soft_allocation(&flat, &db(), 1, 1, 1.0);
        assert_eq!(alloc.app_threads, 1_000_000);
    }

    #[test]
    fn sub_unit_headroom_under_provisions() {
        let alloc = optimal_soft_allocation(&app(), &db(), 1, 1, 0.5);
        assert_eq!(alloc.db_conns_per_app, 18);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn non_positive_headroom_rejected() {
        let _ = optimal_soft_allocation(&app(), &db(), 1, 1, 0.0);
    }
}
