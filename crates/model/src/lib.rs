//! # dcm-model — the concurrency-aware performance model
//!
//! The analytical core of the DCM reproduction (paper §III):
//!
//! * [`laws`] — operational queueing laws (Utilization, Forced Flow,
//!   Little's, Interactive Response Time) and bottleneck analysis over the
//!   tier chain (Eq. 1–4).
//! * [`concurrency`] — the multi-threading throughput model
//!   `X(N) = γKN/(S⁰+α(N−1)+βN(N−1))` (Eq. 5–8), its optimal-concurrency
//!   prediction `N* = √((S⁰−α)/β)`, and online least-squares fitting from
//!   `⟨concurrency, throughput⟩` measurements — the Table I training
//!   procedure.
//! * [`mva`] — exact load-dependent Mean Value Analysis for closed
//!   product-form networks (multi-server stations, think-time terminal)
//!   plus asymptotic operational bounds: the analytic oracle the DES is
//!   validated against.
//! * [`lsq`] — Levenberg–Marquardt nonlinear least squares, `R²`, linear
//!   regression.
//! * [`linalg`] — the dense solver backing the fitter.
//!
//! ## Example: train a model, read off the optimal pool size
//!
//! ```
//! use dcm_model::concurrency::{fit_throughput_curve, ConcurrencyModel, FitOptions};
//!
//! // Measurements from a concurrency sweep of the bottleneck tier.
//! let truth = ConcurrencyModel::new(0.0284, 0.00987, 4.54e-5, 1.0, 1);
//! let samples: Vec<(f64, f64)> = (1..=100)
//!     .map(|n| (n as f64, truth.predict_throughput(n as f64)))
//!     .collect();
//!
//! let report = fit_throughput_curve(&samples, 1, FitOptions::default())?;
//! assert_eq!(report.model.optimal_concurrency(), 20); // the paper's N*
//! # Ok::<(), dcm_model::lsq::FitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocation;
pub mod bootstrap;
pub mod concurrency;
pub mod laws;
pub mod linalg;
pub mod lsq;
pub mod mva;

pub use allocation::{optimal_soft_allocation, SoftAllocation};
pub use bootstrap::{bootstrap_fit, BootstrapReport};
pub use concurrency::{fit_throughput_curve, ConcurrencyModel, FitOptions, FitReport};
pub use laws::{analyze_bottleneck, BottleneckAnalysis, TierDemand};
pub use lsq::{levenberg_marquardt, linear_regression, r_squared, FitError, LmOptions};
pub use mva::{law_rate_table, AsymptoticBounds, ClosedNetwork, MvaSolution, Station};
