//! Golden-file test for the Chrome trace exporter: a tiny two-tier
//! scenario rendered byte-for-byte against
//! `tests/golden/tiny_two_tier.trace.json`, plus structural checks
//! (phases, monotone timestamps, stable track ids) that hold for any
//! input the exporter accepts.

use std::collections::BTreeMap;

use dcm_ntier::ids::{RequestId, ServerId};
use dcm_ntier::spans::{ServerEvent, ServerEventKind, Span, SpanStatus};
use dcm_obs::recorder::RecorderStats;
use dcm_obs::trace::{chrome_trace_json, spans_csv, ControlTick, TraceData};
use dcm_sim::time::SimTime;

const GOLDEN: &str = include_str!("golden/tiny_two_tier.trace.json");

fn us(micros: u64) -> SimTime {
    SimTime::from_nanos(micros * 1_000)
}

/// One web server and two app servers; one two-tier request, one rejected
/// request, a boot, and a control tick. Small enough to audit by eye.
fn tiny_two_tier() -> TraceData {
    let mut server_names = BTreeMap::new();
    server_names.insert(ServerId::new(0), ("web-1".to_string(), 0));
    server_names.insert(ServerId::new(1), ("app-1".to_string(), 1));
    server_names.insert(ServerId::new(2), ("app-2".to_string(), 1));
    TraceData {
        spans: vec![
            Span {
                request: RequestId::new(1),
                tier: 0,
                server: ServerId::new(0),
                arrived_at: us(0),
                started_at: us(0),
                finished_at: us(10_000),
                status: SpanStatus::Completed,
            },
            Span {
                request: RequestId::new(1),
                tier: 1,
                server: ServerId::new(1),
                arrived_at: us(1_000),
                started_at: us(2_000),
                finished_at: us(9_000),
                status: SpanStatus::Completed,
            },
            Span {
                request: RequestId::new(2),
                tier: 1,
                server: ServerId::new(2),
                arrived_at: us(5_000),
                started_at: us(5_000),
                finished_at: us(8_000),
                status: SpanStatus::Rejected,
            },
        ],
        events: vec![ServerEvent {
            at: us(3_000),
            server: ServerId::new(2),
            tier: 1,
            kind: ServerEventKind::BootRequested {
                ready_at: us(4_000),
            },
        }],
        ticks: vec![ControlTick {
            at: us(6_000),
            controller: "DCM".to_string(),
            actions: 1,
        }],
        server_names,
        stats: RecorderStats {
            seen: 4,
            recorded: 3,
            unsampled: 1,
            evicted: 0,
        },
    }
}

#[test]
fn chrome_trace_matches_the_golden_file() {
    let json = chrome_trace_json(&tiny_two_tier());
    assert_eq!(
        json, GOLDEN,
        "Chrome trace output drifted from tests/golden/tiny_two_tier.trace.json; \
         if the schema change is intentional, regenerate the golden file"
    );
}

/// Pulls `"key":<number>` out of an event line, if present.
fn field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn trace_events_use_known_phases_and_monotone_timestamps() {
    let json = chrome_trace_json(&tiny_two_tier());
    let mut last_ts = 0u64;
    let mut saw = (false, false, false); // (M, X, i)
    for line in json.lines().filter(|l| l.starts_with('{') && l.len() > 2) {
        if !line.contains("\"ph\":") {
            continue; // header lines
        }
        let phase = if line.contains("\"ph\":\"M\"") {
            saw.0 = true;
            'M'
        } else if line.contains("\"ph\":\"X\"") {
            saw.1 = true;
            'X'
        } else if line.contains("\"ph\":\"i\"") {
            saw.2 = true;
            'i'
        } else {
            panic!("unknown phase in {line}");
        };
        if phase == 'M' {
            assert_eq!(field(line, "ts"), None, "metadata carries no timestamp");
            continue;
        }
        let ts = field(line, "ts").expect("timed event has ts");
        assert!(ts >= last_ts, "ts went backwards: {ts} after {last_ts}");
        last_ts = ts;
        if phase == 'X' {
            assert!(field(line, "dur").is_some(), "slice without dur: {line}");
        }
    }
    assert_eq!(saw, (true, true, true), "all three phases present");
}

#[test]
fn track_ids_are_stable_per_server() {
    let json = chrome_trace_json(&tiny_two_tier());
    // app-1 is ServerId 1 on tier 1: every one of its events must carry
    // pid=2, tid=1 — scale-out adds tracks but never renumbers them.
    for line in json.lines().filter(|l| l.contains("\"request\":1")) {
        if line.contains("\"pid\":2") {
            assert_eq!(field(line, "tid"), Some(1), "app-1 track moved: {line}");
        } else {
            assert_eq!(field(line, "pid"), Some(1), "web-1 process moved: {line}");
            assert_eq!(field(line, "tid"), Some(0));
        }
    }
}

#[test]
fn span_csv_matches_the_scenario() {
    let csv = spans_csv(&tiny_two_tier());
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 4, "header + three spans");
    assert_eq!(
        lines[0],
        "request,tier,server,arrived_s,started_s,finished_s,queue_s,service_s,status"
    );
    assert_eq!(
        lines[2],
        "1,1,app-1,0.001000,0.002000,0.009000,0.001000,0.007000,completed"
    );
    assert!(lines[3].ends_with("rejected"));
}
