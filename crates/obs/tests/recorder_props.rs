//! Property tests for the sampling span recorder: rate 1.0 loses nothing,
//! any rate is deterministic for a fixed seed, sampling is all-or-nothing
//! per request, and the accounting invariant `seen = recorded + unsampled`
//! holds for every input.

use proptest::prelude::*;

use dcm_ntier::ids::{RequestId, ServerId};
use dcm_ntier::spans::{Span, SpanStatus};
use dcm_obs::recorder::{RecorderStats, SamplerConfig, SpanRecorder};
use dcm_sim::time::SimTime;

fn span(req: u64) -> Span {
    Span {
        request: RequestId::new(req),
        tier: (req % 3) as usize,
        server: ServerId::new(req % 5),
        arrived_at: SimTime::from_nanos(req * 1_000),
        started_at: SimTime::from_nanos(req * 1_000 + 500),
        finished_at: SimTime::from_nanos(req * 1_000 + 2_500),
        status: SpanStatus::Completed,
    }
}

fn run(reqs: &[u64], config: SamplerConfig) -> (Vec<u64>, RecorderStats) {
    let mut recorder = SpanRecorder::new(config);
    for &req in reqs {
        recorder.record(&span(req));
    }
    let (spans, stats) = recorder.finish();
    (spans.iter().map(|s| s.request.raw()).collect(), stats)
}

proptest! {
    /// Rate 1.0 with ample capacity records every span offered, in order.
    #[test]
    fn rate_one_records_everything(reqs in prop::collection::vec(0u64..100_000, 1..300)) {
        let (kept, stats) = run(&reqs, SamplerConfig { rate: 1.0, seed: 7, capacity: 1 << 20 });
        prop_assert_eq!(&kept, &reqs);
        prop_assert_eq!(stats.seen, reqs.len() as u64);
        prop_assert_eq!(stats.recorded, reqs.len() as u64);
        prop_assert_eq!(stats.unsampled, 0);
        prop_assert_eq!(stats.evicted, 0);
    }

    /// For any rate, seed, and capacity, two identical sessions keep the
    /// same spans with the same accounting — the bit-determinism CI relies
    /// on, at the unit level.
    #[test]
    fn any_rate_is_deterministic_for_a_fixed_seed(
        reqs in prop::collection::vec(0u64..100_000, 1..300),
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
        capacity in 0usize..512,
    ) {
        let config = SamplerConfig { rate, seed, capacity };
        let (kept_a, stats_a) = run(&reqs, config);
        let (kept_b, stats_b) = run(&reqs, config);
        prop_assert_eq!(kept_a, kept_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// The accounting invariant holds and the ring never exceeds capacity.
    #[test]
    fn accounting_conserves_spans(
        reqs in prop::collection::vec(0u64..1_000, 1..300),
        rate in 0.0f64..=1.0,
        capacity in 0usize..64,
    ) {
        let (kept, stats) = run(&reqs, SamplerConfig { rate, seed: 3, capacity });
        prop_assert_eq!(stats.seen, stats.recorded + stats.unsampled);
        prop_assert_eq!(stats.seen, reqs.len() as u64);
        prop_assert_eq!(kept.len() as u64, stats.recorded - stats.evicted);
        prop_assert!(kept.len() <= capacity);
    }

    /// Head sampling flips one coin per request id: a request id is either
    /// always kept or always dropped within a session.
    #[test]
    fn sampling_is_all_or_nothing_per_request(
        reqs in prop::collection::vec(0u64..50, 10..300),
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let (kept, stats) = run(&reqs, SamplerConfig { rate, seed, capacity: 1 << 20 });
        let kept_set: std::collections::BTreeSet<u64> = kept.iter().copied().collect();
        // No evictions (huge capacity), so every offer of a kept id must
        // have been admitted: per-id offer counts match exactly.
        prop_assert_eq!(stats.evicted, 0);
        let offered = reqs.iter().filter(|r| kept_set.contains(r)).count();
        prop_assert_eq!(offered, kept.len());
    }
}
