//! The controller decision journal: every control tick records what the
//! controller *saw* (per-tier measurements, pressure/streak state), what it
//! *believed* (the fitted concurrency-law parameters and the N* they
//! imply), what it *did* (scaling and soft-allocation actions), and *why*
//! (a human-readable reason per decision).
//!
//! `repro explain <experiment>` renders the journal as text — "at t=300s
//! tier=db: scale-out because …" — and `repro trace` writes it as stable
//! JSON next to the Chrome trace. Infinite pressure (the silent-tier
//! sentinel) serializes as the JSON string `"inf"`.

use dcm_sim::time::SimTime;

use crate::json::{escape, num, opt_num};

/// What one tier looked like to the controller at a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TierObservation {
    /// Tier index.
    pub tier: usize,
    /// The scaling pressure the trigger computed (`f64::INFINITY` when the
    /// tier is silent/dead and treated as maximally pressured).
    pub pressure: f64,
    /// Which signal produced the pressure (`cpu-util`,
    /// `dwell-pressure(sla=..)`, `silent`).
    pub signal: String,
    /// Mean CPU utilization over the window, when the tier reported.
    pub utilization: Option<f64>,
    /// Completions per second over the window.
    pub throughput: Option<f64>,
    /// Mean in-server concurrency.
    pub concurrency: Option<f64>,
    /// Mean request dwell (seconds).
    pub mean_dwell: Option<f64>,
    /// Mean thread-pool queue length.
    pub queue: Option<f64>,
    /// Routable servers at the tick.
    pub running: usize,
    /// Servers still booting at the tick.
    pub booting: usize,
    /// Consecutive ticks this tier has been silent (no samples).
    pub silent_streak: u32,
}

/// Fitted concurrency-law parameters the controller is acting on,
/// with provenance (offline-trained vs online-refit).
#[derive(Debug, Clone, PartialEq)]
pub struct FitSnapshot {
    /// Which model (`app`, `db`).
    pub name: String,
    /// Zero-concurrency service time S⁰ (seconds).
    pub s0: f64,
    /// Per-thread overhead floor α.
    pub alpha: f64,
    /// Quadratic contention coefficient β.
    pub beta: f64,
    /// Sub-linear speedup exponent γ.
    pub gamma: f64,
    /// The optimal concurrency N* = √((S⁰−α)/β) this fit implies.
    pub n_star: u32,
    /// Goodness of fit of the most recent refit (`None` for the offline
    /// model, whose residual is not retained).
    pub r_squared: Option<f64>,
    /// `offline` (trained before the run) or `online-refit`.
    pub source: String,
}

/// One decision the controller took (or deliberately held).
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Action kind: `scale-out`, `scale-in`, `hold`, `replace-lost`,
    /// `set-threads`, `set-conns`.
    pub action: String,
    /// The tier the decision concerns.
    pub tier: usize,
    /// Pool size / VM count payload, when the action carries one.
    pub value: Option<u32>,
    /// True when the action was actually executed (a `scale-out` can fail
    /// when no VM is available; `hold` is never "applied").
    pub applied: bool,
    /// Human-readable reason with the numbers that drove the decision.
    pub reason: String,
}

/// Provenance of a model-predictive plan: what the planner searched, what
/// it predicted for the plan it chose, and how the *previous* prediction
/// compared against what the system then actually delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProvenance {
    /// Candidate plans the planner evaluated this tick.
    pub candidates: u32,
    /// Predicted system throughput of the chosen plan (req/s).
    pub predicted_throughput: f64,
    /// Predicted mean response time of the chosen plan (seconds).
    pub predicted_response: f64,
    /// Human-readable identity of the chosen plan (tier sizes, N).
    pub chosen: String,
    /// Why this plan won (`meets-slo-cheapest`, `best-effort`, ...).
    pub reason: String,
    /// Relative error of the *last* tick's predicted throughput against
    /// the throughput measured since (`None` on the first tick or when no
    /// measurement arrived).
    pub prediction_error: Option<f64>,
}

/// Everything one control tick recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// When the controller ran.
    pub at: SimTime,
    /// Controller name (`DCM`, `EC2-AutoScale`).
    pub controller: String,
    /// Per-tier inputs, ascending tier order.
    pub observations: Vec<TierObservation>,
    /// Model state backing soft-allocation decisions (empty for
    /// model-free controllers).
    pub fits: Vec<FitSnapshot>,
    /// Decisions, in the order they were taken.
    pub decisions: Vec<Decision>,
    /// Model-predictive planner provenance (`None` for controllers that
    /// do not plan; omitted from JSON so existing artifacts are
    /// byte-stable).
    pub plan: Option<PlanProvenance>,
}

/// The journal: an append-only sequence of [`JournalEntry`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionJournal {
    entries: Vec<JournalEntry>,
}

impl DecisionJournal {
    /// An empty journal.
    pub fn new() -> DecisionJournal {
        DecisionJournal::default()
    }

    /// Appends one tick's record.
    pub fn push(&mut self, entry: JournalEntry) {
        self.entries.push(entry);
    }

    /// All entries, in tick order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no tick has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the journal as stable JSON (fixed field order, fixed float
    /// formatting; infinite pressure as the string `"inf"`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("{\n");
            out.push_str(&format!("  \"t\": {:.3},\n", e.at.as_secs_f64()));
            out.push_str(&format!(
                "  \"controller\": \"{}\",\n",
                escape(&e.controller)
            ));
            out.push_str("  \"observations\": [\n");
            for (j, o) in e.observations.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"tier\": {}, \"pressure\": {}, \"signal\": \"{}\", \
                     \"utilization\": {}, \"throughput\": {}, \"concurrency\": {}, \
                     \"mean_dwell\": {}, \"queue\": {}, \"running\": {}, \
                     \"booting\": {}, \"silent_streak\": {}}}{}\n",
                    o.tier,
                    num(o.pressure),
                    escape(&o.signal),
                    opt_num(o.utilization),
                    opt_num(o.throughput),
                    opt_num(o.concurrency),
                    opt_num(o.mean_dwell),
                    opt_num(o.queue),
                    o.running,
                    o.booting,
                    o.silent_streak,
                    if j + 1 < e.observations.len() {
                        ","
                    } else {
                        ""
                    },
                ));
            }
            out.push_str("  ],\n  \"fits\": [\n");
            for (j, fit) in e.fits.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"s0\": {}, \"alpha\": {}, \"beta\": {}, \
                     \"gamma\": {}, \"n_star\": {}, \"r_squared\": {}, \
                     \"source\": \"{}\"}}{}\n",
                    escape(&fit.name),
                    num(fit.s0),
                    num(fit.alpha),
                    num(fit.beta),
                    num(fit.gamma),
                    fit.n_star,
                    opt_num(fit.r_squared),
                    escape(&fit.source),
                    if j + 1 < e.fits.len() { "," } else { "" },
                ));
            }
            out.push_str("  ],\n  \"decisions\": [\n");
            for (j, d) in e.decisions.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"action\": \"{}\", \"tier\": {}, \"value\": {}, \
                     \"applied\": {}, \"reason\": \"{}\"}}{}\n",
                    escape(&d.action),
                    d.tier,
                    d.value
                        .map_or_else(|| "null".to_string(), |v| v.to_string()),
                    d.applied,
                    escape(&d.reason),
                    if j + 1 < e.decisions.len() { "," } else { "" },
                ));
            }
            out.push_str("  ]");
            if let Some(p) = &e.plan {
                out.push_str(&format!(
                    ",\n  \"plan\": {{\"candidates\": {}, \
                     \"predicted_throughput\": {}, \"predicted_response\": {}, \
                     \"chosen\": \"{}\", \"reason\": \"{}\", \
                     \"prediction_error\": {}}}",
                    p.candidates,
                    num(p.predicted_throughput),
                    num(p.predicted_response),
                    escape(&p.chosen),
                    escape(&p.reason),
                    opt_num(p.prediction_error),
                ));
            }
            out.push_str("\n}");
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the journal as readable text for `repro explain`: one block
    /// per tick that *did* something (plus silent-tier pressure events);
    /// pass `verbose` to include all-hold ticks too.
    pub fn render_explain(&self, verbose: bool) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let acted = e.decisions.iter().any(|d| d.applied || d.action != "hold");
            if !acted && !verbose {
                continue;
            }
            out.push_str(&format!(
                "t={:.0}s [{}]\n",
                e.at.as_secs_f64(),
                e.controller
            ));
            for o in &e.observations {
                let pressure = if o.pressure.is_finite() {
                    format!("{:.3}", o.pressure)
                } else {
                    "inf".to_string()
                };
                out.push_str(&format!(
                    "  tier={} pressure={} ({}) running={} booting={}",
                    o.tier, pressure, o.signal, o.running, o.booting,
                ));
                if let Some(u) = o.utilization {
                    out.push_str(&format!(" util={u:.3}"));
                }
                if let Some(x) = o.throughput {
                    out.push_str(&format!(" xput={x:.1}/s"));
                }
                if let Some(n) = o.concurrency {
                    out.push_str(&format!(" conc={n:.1}"));
                }
                if let Some(q) = o.queue {
                    out.push_str(&format!(" queue={q:.1}"));
                }
                if o.silent_streak > 0 {
                    out.push_str(&format!(" silent_streak={}", o.silent_streak));
                }
                out.push('\n');
            }
            for fit in &e.fits {
                out.push_str(&format!(
                    "  model[{}]: S0={:.5} alpha={:.5} beta={:.2e} gamma={:.3} \
                     N*={} ({}{})\n",
                    fit.name,
                    fit.s0,
                    fit.alpha,
                    fit.beta,
                    fit.gamma,
                    fit.n_star,
                    fit.source,
                    fit.r_squared
                        .map_or_else(String::new, |r2| format!(", r2={r2:.4}")),
                ));
            }
            if let Some(p) = &e.plan {
                out.push_str(&format!(
                    "  plan: {} (of {} candidates, {}) predicted X={:.1}/s R={:.3}s{}\n",
                    p.chosen,
                    p.candidates,
                    p.reason,
                    p.predicted_throughput,
                    p.predicted_response,
                    p.prediction_error.map_or_else(String::new, |e| format!(
                        " | last prediction err {:.1} %",
                        100.0 * e
                    )),
                ));
            }
            for d in &e.decisions {
                if d.action == "hold" && !verbose {
                    continue;
                }
                out.push_str(&format!(
                    "  -> {} tier={}{}{}: {}\n",
                    d.action,
                    d.tier,
                    d.value.map_or_else(String::new, |v| format!(" value={v}")),
                    if d.applied { "" } else { " (not applied)" },
                    d.reason,
                ));
            }
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("(no scaling decisions recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> JournalEntry {
        JournalEntry {
            at: SimTime::from_secs(300),
            controller: "DCM".into(),
            observations: vec![TierObservation {
                tier: 2,
                pressure: 0.91,
                signal: "cpu-util".into(),
                utilization: Some(0.91),
                throughput: Some(120.5),
                concurrency: Some(14.0),
                mean_dwell: Some(0.12),
                queue: Some(3.5),
                running: 2,
                booting: 0,
                silent_streak: 0,
            }],
            fits: vec![FitSnapshot {
                name: "db".into(),
                s0: 0.00719,
                alpha: 0.001,
                beta: 5e-6,
                gamma: 1.0,
                n_star: 35,
                r_squared: Some(0.97),
                source: "online-refit".into(),
            }],
            decisions: vec![Decision {
                action: "scale-out".into(),
                tier: 2,
                value: None,
                applied: true,
                reason: "cpu_util 0.91 > up_threshold 0.80".into(),
            }],
            plan: None,
        }
    }

    #[test]
    fn json_is_stable_and_carries_provenance() {
        let mut j = DecisionJournal::new();
        j.push(entry());
        let json = j.to_json();
        assert!(json.contains("\"t\": 300.000"));
        assert!(json.contains("\"controller\": \"DCM\""));
        assert!(json.contains("\"source\": \"online-refit\""));
        assert!(json.contains("\"r_squared\": 0.970000"));
        assert!(json.contains("\"action\": \"scale-out\""));
        // Byte-determinism: rendering twice is identical.
        assert_eq!(json, j.to_json());
    }

    #[test]
    fn plan_provenance_serializes_only_when_present() {
        let mut j = DecisionJournal::new();
        j.push(entry());
        let without = j.to_json();
        assert!(!without.contains("\"plan\""), "plan absent must be omitted");

        let mut planned = entry();
        planned.controller = "MPC".into();
        planned.plan = Some(PlanProvenance {
            candidates: 42,
            predicted_throughput: 118.3,
            predicted_response: 0.412,
            chosen: "web=1 app=2 db=1 N=36".into(),
            reason: "meets-slo-cheapest".into(),
            prediction_error: Some(0.013),
        });
        let mut j2 = DecisionJournal::new();
        j2.push(planned);
        let json = j2.to_json();
        assert!(json.contains("\"candidates\": 42"));
        assert!(json.contains("\"predicted_throughput\": 118.300000"));
        assert!(json.contains("\"prediction_error\": 0.013000"));
        assert!(json.contains("\"chosen\": \"web=1 app=2 db=1 N=36\""));
        let text = j2.render_explain(false);
        assert!(text.contains("plan: web=1 app=2 db=1 N=36 (of 42 candidates"));
        assert!(text.contains("last prediction err 1.3 %"));
    }

    #[test]
    fn infinite_pressure_serializes_as_string() {
        let mut e = entry();
        e.observations[0].pressure = f64::INFINITY;
        e.observations[0].signal = "silent".into();
        let mut j = DecisionJournal::new();
        j.push(e);
        assert!(j.to_json().contains("\"pressure\": \"inf\""));
        assert!(j.render_explain(true).contains("pressure=inf (silent)"));
    }

    #[test]
    fn explain_skips_all_hold_ticks_unless_verbose() {
        let mut quiet = entry();
        quiet.decisions = vec![Decision {
            action: "hold".into(),
            tier: 2,
            value: None,
            applied: false,
            reason: "pressure in band".into(),
        }];
        let mut j = DecisionJournal::new();
        j.push(quiet);
        assert_eq!(j.render_explain(false), "(no scaling decisions recorded)\n");
        assert!(j.render_explain(true).contains("hold tier=2"));

        j.push(entry());
        let text = j.render_explain(false);
        assert!(text.contains("t=300s [DCM]"));
        assert!(text.contains("-> scale-out tier=2: cpu_util 0.91"));
        assert!(text.contains("model[db]"));
    }
}
