//! Trace exporters: Chrome trace-event JSON (loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev)) and a flat CSV.
//!
//! Layout of the Chrome trace:
//!
//! * one **process per tier** (`pid = tier + 1`), named after the tier;
//! * one **track per server** (`tid = server id`), named after the server,
//!   so scale-out visibly adds tracks mid-trace;
//! * each span becomes a `"queue"` slice (thread wait, emitted only when
//!   non-zero) and a `"service"` slice (thread held), both phase `"X"`,
//!   carrying the request id and terminal status in `args`;
//! * VM-lifecycle/fault events (boots, drains, crashes, slowdowns) are
//!   phase `"i"` instants on the affected server's track;
//! * controller ticks are phase `"i"` instants on a dedicated `controller`
//!   process (`pid = 1000`), carrying the number of actions taken;
//! * recorder drop counters are embedded under `otherData` — a truncated
//!   trace announces itself.
//!
//! Timestamps are microseconds (the format's native unit); events are
//! sorted by `(ts, pid, tid)` so the stream is monotone in `ts`. All output
//! is byte-deterministic for a fixed input.

use std::collections::BTreeMap;

use dcm_ntier::ids::ServerId;
use dcm_ntier::spans::{ServerEvent, ServerEventKind, Span};
use dcm_sim::time::SimTime;

use crate::json::escape;
use crate::recorder::RecorderStats;

/// Process id offset for tier processes (`pid = tier + TIER_PID_BASE`).
const TIER_PID_BASE: u64 = 1;
/// Process id of the synthetic controller track.
const CONTROLLER_PID: u64 = 1000;

/// One controller activation, shown as an instant on the controller track.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlTick {
    /// When the controller ran.
    pub at: SimTime,
    /// Controller name (`DCM`, `EC2-AutoScale`, ...).
    pub controller: String,
    /// Number of actions it took this tick.
    pub actions: usize,
}

/// Everything the exporters need for one run.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Sampled spans, in admission order.
    pub spans: Vec<Span>,
    /// Server lifecycle events.
    pub events: Vec<ServerEvent>,
    /// Controller activations.
    pub ticks: Vec<ControlTick>,
    /// Server id → (name, tier) for every server that ever existed.
    pub server_names: BTreeMap<ServerId, (String, usize)>,
    /// Recorder keep/drop accounting.
    pub stats: RecorderStats,
}

fn micros(t: SimTime) -> u64 {
    t.as_nanos() / 1_000
}

/// The tier label shown as a process name: the common prefix of its server
/// names (`app-3` → `app`), falling back to the tier index.
fn tier_label(tier: usize, server_names: &BTreeMap<ServerId, (String, usize)>) -> String {
    server_names
        .values()
        .find(|(_, t)| *t == tier)
        .map(|(name, _)| {
            let base = name.rsplit_once('-').map_or(name.as_str(), |(b, _)| b);
            base.to_string()
        })
        .unwrap_or_else(|| format!("tier-{tier}"))
}

/// Renders the Chrome trace-event JSON document.
pub fn chrome_trace_json(data: &TraceData) -> String {
    // (sort key, rendered event). Metadata first (key 0), then timed events
    // monotone in ts. The sort is stable, so equal keys keep build order.
    let mut events: Vec<((u64, u64, u64, u64), String)> = Vec::new();

    // Process / thread name metadata.
    let tiers_seen: std::collections::BTreeSet<usize> =
        data.server_names.values().map(|(_, tier)| *tier).collect();
    for &tier in &tiers_seen {
        let pid = tier as u64 + TIER_PID_BASE;
        events.push((
            (0, pid, 0, 0),
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&tier_label(tier, &data.server_names)),
            ),
        ));
    }
    for (sid, (name, tier)) in &data.server_names {
        let pid = *tier as u64 + TIER_PID_BASE;
        let tid = sid.raw();
        events.push((
            (0, pid, tid, 1),
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name),
            ),
        ));
    }
    if !data.ticks.is_empty() {
        let label = escape(&format!("controller {}", data.ticks[0].controller));
        events.push((
            (0, CONTROLLER_PID, 0, 0),
            format!(
                "{{\"ph\":\"M\",\"pid\":{CONTROLLER_PID},\"tid\":0,\
                 \"name\":\"process_name\",\"args\":{{\"name\":\"{label}\"}}}}"
            ),
        ));
    }

    // Span slices.
    for span in &data.spans {
        let pid = span.tier as u64 + TIER_PID_BASE;
        let tid = span.server.raw();
        let queue_us = micros(span.started_at).saturating_sub(micros(span.arrived_at));
        let service_us = micros(span.finished_at).saturating_sub(micros(span.started_at));
        let args = format!(
            "{{\"request\":{},\"status\":\"{}\"}}",
            span.request.raw(),
            span.status.label(),
        );
        if queue_us > 0 {
            let ts = micros(span.arrived_at);
            events.push((
                (1, ts, pid, tid),
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                     \"dur\":{queue_us},\"name\":\"queue\",\"cat\":\"queue\",\
                     \"args\":{args}}}"
                ),
            ));
        }
        let ts = micros(span.started_at);
        events.push((
            (1, ts, pid, tid),
            format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                 \"dur\":{service_us},\"name\":\"service\",\"cat\":\"service\",\
                 \"args\":{args}}}"
            ),
        ));
    }

    // Lifecycle instants.
    for ev in &data.events {
        let pid = ev.tier as u64 + TIER_PID_BASE;
        let tid = ev.server.raw();
        let ts = micros(ev.at);
        let args = match ev.kind {
            ServerEventKind::BootRequested { ready_at } => {
                format!("{{\"ready_at_us\":{}}}", micros(ready_at))
            }
            ServerEventKind::SlowdownSet { factor } => {
                format!("{{\"factor\":{}}}", crate::json::num(factor))
            }
            _ => "{}".into(),
        };
        events.push((
            (1, ts, pid, tid),
            format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
                 \"name\":\"{}\",\"cat\":\"lifecycle\",\"args\":{args}}}",
                ev.kind.label(),
            ),
        ));
    }

    // Controller ticks.
    for tick in &data.ticks {
        let ts = micros(tick.at);
        events.push((
            (1, ts, CONTROLLER_PID, 0),
            format!(
                "{{\"ph\":\"i\",\"pid\":{CONTROLLER_PID},\"tid\":0,\"ts\":{ts},\
                 \"s\":\"p\",\"name\":\"control-tick\",\"cat\":\"control\",\
                 \"args\":{{\"actions\":{}}}}}",
                tick.actions,
            ),
        ));
    }

    events.sort_by_key(|a| a.0);

    let mut out = String::new();
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n");
    out.push_str(&format!(
        "\"otherData\": {{\"spans_seen\": {}, \"spans_recorded\": {}, \
         \"spans_unsampled\": {}, \"spans_evicted\": {}}},\n",
        data.stats.seen, data.stats.recorded, data.stats.unsampled, data.stats.evicted,
    ));
    out.push_str("\"traceEvents\": [\n");
    for (i, (_, ev)) in events.iter().enumerate() {
        out.push_str(ev);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the flat span CSV (one row per span, recorder order).
pub fn spans_csv(data: &TraceData) -> String {
    let mut out = String::from(
        "request,tier,server,arrived_s,started_s,finished_s,queue_s,service_s,status\n",
    );
    for s in &data.spans {
        let server = data
            .server_names
            .get(&s.server)
            .map_or_else(|| s.server.to_string(), |(name, _)| name.clone());
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            s.request.raw(),
            s.tier,
            server,
            s.arrived_at.as_secs_f64(),
            s.started_at.as_secs_f64(),
            s.finished_at.as_secs_f64(),
            s.queue_time().as_secs_f64(),
            s.service_time().as_secs_f64(),
            s.status.label(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_ntier::ids::RequestId;
    use dcm_ntier::spans::SpanStatus;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn data() -> TraceData {
        let mut server_names = BTreeMap::new();
        server_names.insert(ServerId::new(0), ("web-1".to_string(), 0));
        server_names.insert(ServerId::new(1), ("app-1".to_string(), 1));
        TraceData {
            spans: vec![Span {
                request: RequestId::new(3),
                tier: 1,
                server: ServerId::new(1),
                arrived_at: t(1.0),
                started_at: t(1.5),
                finished_at: t(2.0),
                status: SpanStatus::Completed,
            }],
            events: vec![ServerEvent {
                at: t(0.5),
                server: ServerId::new(1),
                tier: 1,
                kind: ServerEventKind::BootCompleted,
            }],
            ticks: vec![ControlTick {
                at: t(1.2),
                controller: "DCM".into(),
                actions: 2,
            }],
            server_names,
            stats: RecorderStats {
                seen: 1,
                recorded: 1,
                unsampled: 0,
                evicted: 0,
            },
        }
    }

    #[test]
    fn chrome_trace_has_slices_instants_and_metadata() {
        let json = chrome_trace_json(&data());
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"queue\""));
        assert!(json.contains("\"name\":\"service\""));
        assert!(json.contains("\"name\":\"boot-completed\""));
        assert!(json.contains("\"name\":\"control-tick\""));
        assert!(json.contains("\"spans_seen\": 1"));
        // Tier process label derived from the server-name prefix.
        assert!(json.contains("\"name\":\"app\""));
    }

    #[test]
    fn csv_resolves_server_names() {
        let csv = spans_csv(&data());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("request,tier,server,arrived_s,started_s,finished_s,queue_s,service_s,status")
        );
        let row = lines.next().expect("one row");
        assert!(row.starts_with("3,1,app-1,1.000000,1.500000,2.000000"));
        assert!(row.ends_with("completed"));
    }
}
