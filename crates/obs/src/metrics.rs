//! Typed metrics registry and columnar time-series.
//!
//! The registry holds three metric kinds under stable string names:
//! monotone **counters** (`u64`), instantaneous **gauges** (`f64`), and
//! **histograms** ([`dcm_sim::stats::Histogram`]). Once per control period
//! the experiment harness snapshots the registry into a [`SeriesTable`] —
//! a columnar time-series with one row per snapshot and one column per
//! metric — which renders to a stable CSV.
//!
//! The registry is also the single home for the `repro` binary's
//! wall-clock/events-per-second bookkeeping ([`PerfLog`]), which used to be
//! ad-hoc structs inside the binary; the JSON it renders keeps the exact
//! `results/perf.json` shape CI compares against.
//!
//! Everything iterates `BTreeMap`s, so output order is deterministic.

use std::collections::BTreeMap;

use dcm_sim::stats::Histogram;

use crate::json::escape;

/// Typed counter/gauge/histogram store keyed by metric name.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records into the named histogram, creating it with the given bounds
    /// on first use. Out-of-range bounds on first use are a programming
    /// error and panic (matching `Histogram::new`'s contract).
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `bins == 0` when the histogram is created.
    pub fn histogram_record(&mut self, name: &str, low: f64, high: f64, bins: usize, value: f64) {
        let h = self.histograms.entry(name.to_string()).or_insert_with(|| {
            match Histogram::new(low, high, bins) {
                Ok(h) => h,
                Err(e) => panic!("invalid histogram bounds for {name}: {e:?}"),
            }
        });
        h.record(value);
    }

    /// The named histogram, created with the given bounds on first access.
    /// Hot paths that record many values per period should fetch the
    /// histogram once through this method instead of paying a name lookup
    /// per [`Registry::histogram_record`] call.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `bins == 0` when the histogram is created.
    pub fn histogram_entry(
        &mut self,
        name: &str,
        low: f64,
        high: f64,
        bins: usize,
    ) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_insert_with(|| {
            match Histogram::new(low, high, bins) {
                Ok(h) => h,
                Err(e) => panic!("invalid histogram bounds for {name}: {e:?}"),
            }
        })
    }

    /// The named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All metric names, sorted, with a kind prefix column view:
    /// counters, then gauges, then histograms.
    pub fn names(&self) -> Vec<String> {
        self.counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .cloned()
            .collect()
    }
}

/// Columnar time-series: one row per snapshot, one column per metric.
///
/// Columns appearing after the first snapshot are backfilled with zeros so
/// the table stays rectangular; counters snapshot as their cumulative value
/// and histograms contribute `<name>.count` / `<name>.mean` / `<name>.p95`
/// columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesTable {
    times: Vec<f64>,
    columns: BTreeMap<String, Vec<f64>>,
}

impl SeriesTable {
    /// An empty table.
    pub fn new() -> SeriesTable {
        SeriesTable::default()
    }

    /// Number of snapshot rows.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no snapshot has been taken.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns.get(name).map(Vec::as_slice)
    }

    /// Snapshot times (seconds).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Captures one row from the registry at time `t` (seconds).
    pub fn snapshot(&mut self, t: f64, registry: &Registry) {
        let row = self.times.len();
        self.times.push(t);
        let set = |columns: &mut BTreeMap<String, Vec<f64>>, name: &str, value: f64| {
            let col = columns
                .entry(name.to_string())
                .or_insert_with(|| vec![0.0; row]);
            col.push(value);
        };
        for (name, &v) in &registry.counters {
            set(&mut self.columns, name, v as f64);
        }
        for (name, &v) in &registry.gauges {
            set(&mut self.columns, name, v);
        }
        for (name, h) in &registry.histograms {
            set(
                &mut self.columns,
                &format!("{name}.count"),
                h.count() as f64,
            );
            set(&mut self.columns, &format!("{name}.mean"), h.mean());
            set(
                &mut self.columns,
                &format!("{name}.p95"),
                h.quantile(0.95).unwrap_or(0.0),
            );
        }
        // Columns missing from this snapshot (metric deleted — shouldn't
        // happen, but keep the table rectangular regardless).
        for col in self.columns.values_mut() {
            if col.len() == row {
                col.push(0.0);
            }
        }
    }

    /// Renders the table as CSV: `t` then one column per metric, sorted by
    /// name. Byte-deterministic.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t");
        for name in self.columns.keys() {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (row, t) in self.times.iter().enumerate() {
            out.push_str(&format!("{t:.3}"));
            for col in self.columns.values() {
                out.push_str(&format!(",{:.6}", col[row]));
            }
            out.push('\n');
        }
        out
    }
}

/// Wall-clock performance bookkeeping for the `repro` binary, backed by the
/// registry (gauge `perf.<name>.wall_secs`, counter `perf.<name>.events`).
///
/// The timing itself (an `Instant` pair) stays in the binary — this crate
/// is wall-clock-free under the Strict lint policy; it only stores and
/// renders the measured numbers.
#[derive(Debug, Default)]
pub struct PerfLog {
    registry: Registry,
    order: Vec<String>,
}

impl PerfLog {
    /// An empty log.
    pub fn new() -> PerfLog {
        PerfLog::default()
    }

    /// Records one experiment's wall time and engine event count.
    pub fn record(&mut self, name: &str, wall_secs: f64, events: u64) {
        self.order.push(name.to_string());
        self.registry
            .gauge_set(&format!("perf.{name}.wall_secs"), wall_secs);
        self.registry
            .counter_add(&format!("perf.{name}.events"), events);
    }

    /// Attaches the process peak RSS (bytes) observed at the end of the
    /// named experiment. Rendered as `"peak_rss_mb"` in the JSON entry;
    /// entries without a recorded peak keep the historical shape.
    pub fn record_peak_rss(&mut self, name: &str, peak_rss_bytes: u64) {
        self.registry.gauge_set(
            &format!("perf.{name}.peak_rss_mb"),
            peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
    }

    /// Attaches request-slab allocation counters to the named experiment:
    /// `allocated` entries were created fresh, `reused` entries recycled a
    /// retired slot (the slab hit rate is `reused / (allocated + reused)`).
    pub fn record_slab(&mut self, name: &str, allocated: u64, reused: u64) {
        self.registry
            .counter_add(&format!("perf.{name}.slab_allocated"), allocated);
        self.registry
            .counter_add(&format!("perf.{name}.slab_reused"), reused);
    }

    /// Number of experiments recorded.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total engine events across recorded experiments.
    pub fn total_events(&self) -> u64 {
        self.order
            .iter()
            .map(|name| self.registry.counter(&format!("perf.{name}.events")))
            .sum()
    }

    /// The backing registry (read access for tests / other exporters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Renders the historical `results/perf.json` shape (field order and
    /// formatting unchanged from the pre-registry implementation).
    pub fn to_json(
        &self,
        command: &str,
        fidelity: &str,
        jobs: usize,
        total_wall_secs: f64,
    ) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"command\": \"{}\",\n", escape(command)));
        out.push_str(&format!("  \"fidelity\": \"{}\",\n", escape(fidelity)));
        out.push_str(&format!("  \"jobs\": {jobs},\n"));
        out.push_str(&format!("  \"total_wall_secs\": {total_wall_secs:.6},\n"));
        out.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        out.push_str("  \"experiments\": [\n");
        for (i, name) in self.order.iter().enumerate() {
            let wall = self
                .registry
                .gauge(&format!("perf.{name}.wall_secs"))
                .unwrap_or(0.0);
            let events = self.registry.counter(&format!("perf.{name}.events"));
            let rate = if wall > 0.0 {
                events as f64 / wall
            } else {
                0.0
            };
            let mut extras = String::new();
            if let Some(rss) = self.registry.gauge(&format!("perf.{name}.peak_rss_mb")) {
                extras.push_str(&format!(", \"peak_rss_mb\": {rss:.1}"));
            }
            let allocated = self
                .registry
                .counter(&format!("perf.{name}.slab_allocated"));
            let reused = self.registry.counter(&format!("perf.{name}.slab_reused"));
            if allocated + reused > 0 {
                extras.push_str(&format!(
                    ", \"slab_allocated\": {allocated}, \"slab_reused\": {reused}"
                ));
            }
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_secs\": {:.6}, \"events\": {}, \
                 \"events_per_sec\": {:.1}{}}}{}\n",
                escape(name),
                wall,
                events,
                rate,
                extras,
                if i + 1 < self.order.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counter_gauge_histogram_roundtrip() {
        let mut r = Registry::new();
        r.counter_add("requests", 3);
        r.counter_add("requests", 2);
        assert_eq!(r.counter("requests"), 5);
        assert_eq!(r.counter("never"), 0);
        r.gauge_set("util", 0.75);
        assert_eq!(r.gauge("util"), Some(0.75));
        r.histogram_record("dwell", 0.0, 10.0, 100, 1.0);
        r.histogram_record("dwell", 0.0, 10.0, 100, 3.0);
        let h = r.histogram("dwell").expect("created on first record");
        assert_eq!(h.count(), 2);
        assert_eq!(r.names().len(), 3);
    }

    #[test]
    fn series_table_stays_rectangular_with_late_columns() {
        let mut r = Registry::new();
        let mut table = SeriesTable::new();
        r.gauge_set("a", 1.0);
        table.snapshot(0.0, &r);
        r.gauge_set("b", 2.0); // New column after the first row.
        table.snapshot(1.0, &r);
        assert_eq!(table.len(), 2);
        assert_eq!(table.column("a"), Some(&[1.0, 1.0][..]));
        assert_eq!(table.column("b"), Some(&[0.0, 2.0][..]));
        let csv = table.to_csv();
        assert!(csv.starts_with("t,a,b\n"));
        assert!(csv.contains("0.000,1.000000,0.000000"));
        assert!(csv.contains("1.000,1.000000,2.000000"));
    }

    #[test]
    fn perf_log_keeps_the_historical_json_shape() {
        let mut perf = PerfLog::new();
        perf.record("fig2a", 0.5, 1000);
        perf.record("fig5", 1.5, 6000);
        assert_eq!(perf.total_events(), 7000);
        let json = perf.to_json("all", "full", 4, 2.125);
        assert!(json.contains("\"command\": \"all\""));
        assert!(json.contains("\"fidelity\": \"full\""));
        assert!(json.contains("\"jobs\": 4"));
        assert!(json.contains("\"total_wall_secs\": 2.125000"));
        assert!(json.contains("\"total_events\": 7000"));
        assert!(json.contains(
            "{\"name\": \"fig2a\", \"wall_secs\": 0.500000, \"events\": 1000, \
             \"events_per_sec\": 2000.0},"
        ));
        assert!(json.contains(
            "{\"name\": \"fig5\", \"wall_secs\": 1.500000, \"events\": 6000, \
             \"events_per_sec\": 4000.0}\n"
        ));
    }

    #[test]
    fn perf_log_memory_and_slab_extras_extend_entries() {
        let mut perf = PerfLog::new();
        perf.record("fleet", 2.0, 1000);
        perf.record_peak_rss("fleet", 512 * 1024 * 1024);
        perf.record_slab("fleet", 100, 900);
        perf.record("plain", 1.0, 500);
        let json = perf.to_json("fleet", "full", 1, 3.0);
        assert!(json.contains(
            "{\"name\": \"fleet\", \"wall_secs\": 2.000000, \"events\": 1000, \
             \"events_per_sec\": 500.0, \"peak_rss_mb\": 512.0, \
             \"slab_allocated\": 100, \"slab_reused\": 900},"
        ));
        // Entries without extras keep the historical shape exactly.
        assert!(json.contains(
            "{\"name\": \"plain\", \"wall_secs\": 1.000000, \"events\": 500, \
             \"events_per_sec\": 500.0}\n"
        ));
    }
}
