//! Bounded, seed-deterministic span recording.
//!
//! The recorder sits between the simulator's span log and the exporters.
//! Two properties drive its design:
//!
//! * **Determinism** — the keep/drop decision for a request is a pure
//!   function of `(seed, request id)` via
//!   [`derive_seed`](dcm_sim::rng::derive_seed), so the recorded set is
//!   identical for every `--jobs` value and across machines. This is
//!   *head sampling*: one coin per request, flipped on its id, so a kept
//!   request keeps **all** of its tier visits and a trace waterfall is
//!   never half-recorded.
//! * **Boundedness without silence** — a hard ring-buffer capacity evicts
//!   the oldest span when full, and every evicted or unsampled span is
//!   counted in [`RecorderStats`], which the exporters embed in their
//!   output. Truncation is visible, never silent.
//!
//! Disabled recording is free: [`SpanRecorder::Off`] is a unit variant and
//! [`SpanRecorder::record`] on it is an inlined no-op match arm — no
//! allocation, no coin flip, no branch beyond the discriminant check.

use std::collections::VecDeque;

use dcm_ntier::spans::Span;
use dcm_sim::rng::derive_seed;
use serde::{Deserialize, Serialize};

/// Sampling and retention configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Probability in `[0, 1]` that a request's spans are kept (1.0 keeps
    /// everything, 0.0 keeps nothing).
    pub rate: f64,
    /// Base seed for the per-request coin; the coin for request `r` is
    /// derived as `derive_seed(seed, r)`, independent of every other RNG
    /// stream in the simulation.
    pub seed: u64,
    /// Hard capacity of the span ring. When full, the *oldest* span is
    /// evicted (and counted) to admit the new one.
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            rate: 1.0,
            seed: 0,
            capacity: 65_536,
        }
    }
}

/// Keep/drop accounting for one recording session.
///
/// Invariant: `seen = recorded + unsampled`; the ring currently holds
/// `recorded - evicted` spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Spans offered to the recorder.
    pub seen: u64,
    /// Spans admitted to the ring (some may have been evicted later).
    pub recorded: u64,
    /// Spans dropped by the sampling coin.
    pub unsampled: u64,
    /// Spans evicted from a full ring (oldest-first), plus spans refused
    /// outright when `capacity == 0`.
    pub evicted: u64,
}

/// A span recorder with enum-dispatched on/off state.
///
/// The hot path ([`record`](SpanRecorder::record)) is written so the `Off`
/// arm compiles to a discriminant check and nothing else — the cost of a
/// disabled recorder in the simulation loop is unmeasurable (CI enforces
/// ≤ 2 % against a recorder-free baseline).
#[derive(Debug)]
pub enum SpanRecorder {
    /// Recording disabled; `record` is a no-op.
    Off,
    /// Recording enabled; state is boxed so the `Off` variant stays one
    /// word and cheap to pass around.
    On(Box<ActiveRecorder>),
}

impl SpanRecorder {
    /// An enabled recorder with the given sampling config.
    pub fn new(config: SamplerConfig) -> SpanRecorder {
        SpanRecorder::On(Box::new(ActiveRecorder {
            config,
            ring: VecDeque::new(),
            stats: RecorderStats::default(),
        }))
    }

    /// A disabled recorder.
    pub fn off() -> SpanRecorder {
        SpanRecorder::Off
    }

    /// True when recording.
    pub fn is_on(&self) -> bool {
        matches!(self, SpanRecorder::On(_))
    }

    /// Offers one span. No-op when off.
    #[inline]
    pub fn record(&mut self, span: &Span) {
        match self {
            SpanRecorder::Off => {}
            SpanRecorder::On(active) => active.record(span),
        }
    }

    /// Offers a batch of spans. No-op when off.
    pub fn record_all(&mut self, spans: &[Span]) {
        match self {
            SpanRecorder::Off => {}
            SpanRecorder::On(active) => {
                for span in spans {
                    active.record(span);
                }
            }
        }
    }

    /// Current accounting (all zeros when off).
    pub fn stats(&self) -> RecorderStats {
        match self {
            SpanRecorder::Off => RecorderStats::default(),
            SpanRecorder::On(active) => active.stats,
        }
    }

    /// Consumes the recorder, returning the retained spans (in admission
    /// order) and the final accounting.
    pub fn finish(self) -> (Vec<Span>, RecorderStats) {
        match self {
            SpanRecorder::Off => (Vec::new(), RecorderStats::default()),
            SpanRecorder::On(active) => {
                let stats = active.stats;
                (active.ring.into_iter().collect(), stats)
            }
        }
    }
}

/// Live recording state behind [`SpanRecorder::On`].
#[derive(Debug)]
pub struct ActiveRecorder {
    config: SamplerConfig,
    ring: VecDeque<Span>,
    stats: RecorderStats,
}

impl ActiveRecorder {
    fn record(&mut self, span: &Span) {
        self.stats.seen += 1;
        if !self.keeps(span.request.raw()) {
            self.stats.unsampled += 1;
            return;
        }
        if self.config.capacity == 0 {
            // Degenerate ring: nothing fits, but the drop is still counted.
            self.stats.recorded += 1;
            self.stats.evicted += 1;
            return;
        }
        if self.ring.len() == self.config.capacity {
            // Full ring: evict the oldest span to admit the new one. The
            // eviction is counted and surfaced by every exporter, so a
            // truncated trace announces itself.
            if self.ring.pop_front().is_some() {
                self.stats.evicted += 1;
            }
        }
        self.ring.push_back(*span);
        self.stats.recorded += 1;
    }

    /// The per-request head-sampling coin: pure in `(seed, request)`.
    fn keeps(&self, request: u64) -> bool {
        if self.config.rate >= 1.0 {
            return true;
        }
        if self.config.rate <= 0.0 {
            return false;
        }
        // Same bits→uniform mapping as Xoshiro's next_f64: top 53 bits.
        let coin = (derive_seed(self.config.seed, request) >> 11) as f64 / (1u64 << 53) as f64;
        coin < self.config.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_ntier::ids::{RequestId, ServerId};
    use dcm_ntier::spans::SpanStatus;
    use dcm_sim::time::SimTime;

    fn span(req: u64) -> Span {
        Span {
            request: RequestId::new(req),
            tier: 0,
            server: ServerId::new(0),
            arrived_at: SimTime::ZERO,
            started_at: SimTime::ZERO,
            finished_at: SimTime::from_secs(1),
            status: SpanStatus::Completed,
        }
    }

    #[test]
    fn off_recorder_keeps_nothing_and_counts_nothing() {
        let mut r = SpanRecorder::off();
        assert!(!r.is_on());
        r.record(&span(1));
        r.record_all(&[span(2), span(3)]);
        assert_eq!(r.stats(), RecorderStats::default());
        let (spans, stats) = r.finish();
        assert!(spans.is_empty());
        assert_eq!(stats, RecorderStats::default());
    }

    #[test]
    fn rate_one_keeps_everything_until_capacity() {
        let mut r = SpanRecorder::new(SamplerConfig {
            rate: 1.0,
            seed: 7,
            capacity: 3,
        });
        for i in 0..5 {
            r.record(&span(i));
        }
        let (spans, stats) = r.finish();
        assert_eq!(stats.seen, 5);
        assert_eq!(stats.recorded, 5);
        assert_eq!(stats.unsampled, 0);
        assert_eq!(stats.evicted, 2);
        // The ring keeps the newest three, oldest evicted first.
        let kept: Vec<u64> = spans.iter().map(|s| s.request.raw()).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn head_sampling_is_per_request_not_per_span() {
        let config = SamplerConfig {
            rate: 0.5,
            seed: 42,
            capacity: 1024,
        };
        let mut r = SpanRecorder::new(config);
        // Three spans per request: either all kept or all dropped.
        for req in 0..200 {
            for _ in 0..3 {
                r.record(&span(req));
            }
        }
        let (spans, stats) = r.finish();
        assert_eq!(stats.seen, 600);
        let mut per_req: std::collections::BTreeMap<u64, usize> = Default::default();
        for s in &spans {
            *per_req.entry(s.request.raw()).or_default() += 1;
        }
        assert!(per_req.values().all(|&n| n == 3), "partial waterfalls");
        // Rate 0.5 over 200 requests keeps a non-trivial fraction.
        assert!(
            per_req.len() > 50 && per_req.len() < 150,
            "{}",
            per_req.len()
        );
    }

    #[test]
    fn zero_capacity_counts_drops() {
        let mut r = SpanRecorder::new(SamplerConfig {
            rate: 1.0,
            seed: 0,
            capacity: 0,
        });
        r.record(&span(1));
        let (spans, stats) = r.finish();
        assert!(spans.is_empty());
        assert_eq!(stats.recorded, 1);
        assert_eq!(stats.evicted, 1);
    }
}
