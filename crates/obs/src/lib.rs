//! # dcm-obs — deterministic observability for the DCM reproduction
//!
//! The paper's evaluation is observational: Figures 4–5 argue by showing
//! *where* requests wait (per-tier queue vs service time), how goodput
//! evolves per control period, and *why* DCM chose each hardware/soft
//! allocation. This crate exports exactly those three views from any
//! experiment run, deterministically (byte-identical across `--jobs`):
//!
//! * [`recorder`] — a bounded, seed-deterministic sampling
//!   [`SpanRecorder`](recorder::SpanRecorder) over the simulator's span
//!   stream: head sampling by a `derive_seed` per-request coin, a hard
//!   ring-buffer cap, and drop counters so truncation is never silent.
//!   Disabled recording is a no-op enum arm — zero cost on the hot path.
//! * [`trace`] — exporters for Chrome trace-event JSON (loadable in
//!   `chrome://tracing` / Perfetto: one track per server, queue vs service
//!   slices, instant events for boots/crashes/control ticks) and flat CSV.
//! * [`metrics`] — a typed counter/gauge/histogram
//!   [`Registry`](metrics::Registry) snapshotted once per control period
//!   into a columnar [`SeriesTable`](metrics::SeriesTable); also the home
//!   of the `repro` binary's wall-clock bookkeeping
//!   ([`PerfLog`](metrics::PerfLog)).
//! * [`journal`] — the controller
//!   [`DecisionJournal`](journal::DecisionJournal): per tick, the
//!   measurements seen, the fitted S⁰/α/β/γ (+N*, residual, provenance),
//!   every decision and a human-readable reason. `repro explain` renders
//!   it as "at t=300s tier=2: scale-out because …".
//!
//! ## Example
//!
//! ```
//! use dcm_obs::recorder::{SamplerConfig, SpanRecorder};
//! use dcm_obs::trace::{chrome_trace_json, TraceData};
//! use dcm_ntier::ids::{RequestId, ServerId};
//! use dcm_ntier::spans::{Span, SpanStatus};
//! use dcm_sim::time::SimTime;
//!
//! let mut rec = SpanRecorder::new(SamplerConfig::default());
//! rec.record(&Span {
//!     request: RequestId::new(1),
//!     tier: 0,
//!     server: ServerId::new(0),
//!     arrived_at: SimTime::ZERO,
//!     started_at: SimTime::from_secs_f64(0.002),
//!     finished_at: SimTime::from_secs_f64(0.012),
//!     status: SpanStatus::Completed,
//! });
//! let (spans, stats) = rec.finish();
//! assert_eq!(stats.recorded, 1);
//! let json = chrome_trace_json(&TraceData { spans, stats, ..Default::default() });
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod json;

pub mod faillog;
pub mod journal;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use faillog::{FailureLog, FailureRecord};
pub use journal::{Decision, DecisionJournal, FitSnapshot, JournalEntry, TierObservation};
pub use metrics::{PerfLog, Registry, SeriesTable};
pub use recorder::{RecorderStats, SamplerConfig, SpanRecorder};
pub use trace::{chrome_trace_json, spans_csv, ControlTick, TraceData};
