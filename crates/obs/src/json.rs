//! Tiny hand-rolled JSON emission helpers shared by the exporters.
//!
//! The repo's committed artifacts are byte-compared in CI, so every writer
//! here is deterministic by construction: fixed field order, fixed float
//! formatting, explicit escaping. (No serde_json — the workspace builds
//! fully offline with in-tree shims only.)

/// Escapes a string for inclusion inside a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value: finite values as fixed 6-decimal
/// numbers, non-finite values as the strings `"inf"` / `"-inf"` / `"nan"`
/// (JSON has no float specials; the journal uses `"inf"` for the silent-
/// tier pressure sentinel).
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else if v.is_nan() {
        "\"nan\"".into()
    } else if v > 0.0 {
        "\"inf\"".into()
    } else {
        "\"-inf\"".into()
    }
}

/// Formats an `Option<f64>` as a JSON value (`null` when absent).
pub(crate) fn opt_num(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_formats_finite_and_specials() {
        assert_eq!(num(1.5), "1.500000");
        assert_eq!(num(f64::INFINITY), "\"inf\"");
        assert_eq!(num(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(num(f64::NAN), "\"nan\"");
        assert_eq!(opt_num(None), "null");
        assert_eq!(opt_num(Some(2.0)), "2.000000");
    }
}
