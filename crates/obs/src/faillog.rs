//! A deterministic journal of *why* runs failed.
//!
//! The fuzzing campaign (`repro hunt`) checks hundreds of generated
//! scenarios against invariant oracles; when one fails, the interesting
//! artifact is not the panic but the story — which scenario, which
//! oracle, what the oracle saw. A [`FailureLog`] collects those records
//! in campaign order and renders them as text (for the console) and JSON
//! (for `results/hunt.json`, which CI byte-compares across `--jobs`
//! values — so the log holds virtual quantities and strings only, never
//! wall-clock or host data).

use crate::json::escape;

/// One failed run: which scenario, which oracle rejected it, and the
/// oracle's explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// The campaign index of the failing scenario.
    pub scenario: u64,
    /// The oracle that rejected the run (`conservation`, `replay`, ...).
    pub oracle: String,
    /// The oracle's explanation: the violated identity with both sides,
    /// or the mismatching quantities.
    pub detail: String,
}

/// An append-only journal of failed runs, in campaign order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureLog {
    records: Vec<FailureRecord>,
}

impl FailureLog {
    /// An empty log.
    pub fn new() -> Self {
        FailureLog::default()
    }

    /// Appends one failure.
    pub fn record(&mut self, scenario: u64, oracle: &str, detail: &str) {
        self.records.push(FailureRecord {
            scenario,
            oracle: oracle.to_string(),
            detail: detail.to_string(),
        });
    }

    /// The recorded failures, in append order.
    pub fn records(&self) -> &[FailureRecord] {
        &self.records
    }

    /// True when nothing failed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Recorded failure count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// One line per failure, for the console.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "scenario {} violated {}: {}\n",
                r.scenario, r.oracle, r.detail
            ));
        }
        out
    }

    /// The records as a JSON array (deterministic field order and
    /// escaping; safe for byte-compared artifacts).
    pub fn to_json_array(&self) -> String {
        let mut json = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!(
                "{{\"scenario\": {}, \"oracle\": \"{}\", \"detail\": \"{}\"}}",
                r.scenario,
                escape(&r.oracle),
                escape(&r.detail)
            ));
        }
        json.push(']');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_in_order_with_escaping() {
        let mut log = FailureLog::new();
        assert!(log.is_empty());
        log.record(3, "conservation", "in_flight = 2 at drain");
        log.record(7, "replay", "run \"a\" != run \"b\"");
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].scenario, 3);
        let text = log.render_text();
        assert!(text.starts_with("scenario 3 violated conservation:"));
        let json = log.to_json_array();
        assert!(json.starts_with('['));
        assert!(json.contains("\\\"a\\\""), "quotes must be escaped: {json}");
        assert!(json.ends_with(']'));
    }

    #[test]
    fn empty_log_is_an_empty_array() {
        assert_eq!(FailureLog::new().to_json_array(), "[]");
    }
}
