//! Property-based tests for the broker: offset discipline, consumer-group
//! semantics, and retention under arbitrary operation sequences.

use proptest::prelude::*;

use dcm_bus::{Broker, GroupConsumer, Retention};

#[derive(Debug, Clone)]
enum Op {
    Produce { key: Option<u8>, value: u32 },
    Poll { max: usize },
    Commit,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (prop::option::of(0u8..8), any::<u32>())
            .prop_map(|(key, value)| Op::Produce { key, value }),
        (1usize..50).prop_map(|max| Op::Poll { max }),
        Just(Op::Commit),
    ]
}

proptest! {
    /// A consumer sees every produced record exactly once, per partition in
    /// offset order, across arbitrary produce/poll/commit interleavings.
    #[test]
    fn consumer_sees_everything_exactly_once(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut broker: Broker<u32> = Broker::new();
        broker.create_topic("t", 3, Retention::UNBOUNDED).unwrap();
        let mut consumer = GroupConsumer::new("g", "t", &broker).unwrap();
        let mut produced: Vec<u32> = Vec::new();
        let mut consumed: Vec<u32> = Vec::new();
        let mut ts = 0u64;
        for op in &ops {
            match op {
                Op::Produce { key, value } => {
                    ts += 1;
                    broker
                        .produce("t", ts, key.map(|k| format!("k{k}")), *value)
                        .unwrap();
                    produced.push(*value);
                }
                Op::Poll { max } => {
                    let batch = consumer.poll(&broker, *max).unwrap();
                    consumed.extend(batch.iter().map(|e| e.value));
                }
                Op::Commit => consumer.commit(&mut broker).unwrap(),
            }
        }
        // Drain whatever remains.
        loop {
            let batch = consumer.poll(&broker, 1000).unwrap();
            if batch.is_empty() {
                break;
            }
            consumed.extend(batch.iter().map(|e| e.value));
        }
        let mut produced_sorted = produced.clone();
        let mut consumed_sorted = consumed.clone();
        produced_sorted.sort_unstable();
        consumed_sorted.sort_unstable();
        prop_assert_eq!(produced_sorted, consumed_sorted);
        prop_assert_eq!(consumer.lag(&broker).unwrap(), 0);
    }

    /// High watermarks are dense: total records equals the sum of
    /// watermarks; per-partition offsets are assigned 0,1,2,...
    #[test]
    fn offsets_are_dense(keys in prop::collection::vec(prop::option::of(0u8..5), 1..150)) {
        let mut broker: Broker<usize> = Broker::new();
        broker.create_topic("t", 4, Retention::UNBOUNDED).unwrap();
        for (i, key) in keys.iter().enumerate() {
            let (partition, offset) = broker
                .produce("t", i as u64, key.map(|k| format!("k{k}")), i)
                .unwrap();
            // The assigned offset must equal the prior watermark.
            prop_assert_eq!(offset + 1, broker.high_watermark("t", partition).unwrap());
        }
        let total: u64 = (0..4).map(|p| broker.high_watermark("t", p).unwrap()).sum();
        prop_assert_eq!(total, keys.len() as u64);
    }

    /// Same key always lands in the same partition.
    #[test]
    fn keyed_routing_is_deterministic(key in 0u8..32, n in 1usize..20) {
        let mut broker: Broker<u32> = Broker::new();
        broker.create_topic("t", 5, Retention::UNBOUNDED).unwrap();
        let mut partitions = std::collections::HashSet::new();
        for i in 0..n {
            let (p, _) = broker
                .produce("t", i as u64, Some(format!("key-{key}")), 0)
                .unwrap();
            partitions.insert(p);
        }
        prop_assert_eq!(partitions.len(), 1);
    }

    /// Count-bounded retention never retains more than the limit, never
    /// advances the watermark backwards, and keeps the newest entries.
    #[test]
    fn retention_keeps_newest(limit in 1usize..20, n in 1usize..100) {
        let mut broker: Broker<usize> = Broker::new();
        broker
            .create_topic("t", 1, Retention::by_entries(limit))
            .unwrap();
        for i in 0..n {
            broker.produce_to_partition("t", 0, i as u64, None, i).unwrap();
        }
        let hw = broker.high_watermark("t", 0).unwrap();
        prop_assert_eq!(hw, n as u64);
        let start = hw.saturating_sub(limit as u64);
        let batch = broker.fetch("t", 0, start, 1000).unwrap();
        prop_assert!(batch.len() <= limit);
        // Retained values are exactly the newest ones.
        for (i, entry) in batch.iter().enumerate() {
            prop_assert_eq!(entry.value, start as usize + i);
        }
    }

    /// A consumer that resumes after retention trimmed its position still
    /// terminates with zero lag and sees only retained records.
    #[test]
    fn consumer_survives_retention_gaps(
        produce_before in 1usize..80,
        produce_after in 1usize..80,
    ) {
        let mut broker: Broker<usize> = Broker::new();
        broker.create_topic("t", 1, Retention::by_entries(10)).unwrap();
        let mut consumer = GroupConsumer::new("g", "t", &broker).unwrap();
        for i in 0..produce_before {
            broker.produce_to_partition("t", 0, i as u64, None, i).unwrap();
        }
        let first = consumer.poll(&broker, 1000).unwrap();
        for i in 0..produce_after {
            broker
                .produce_to_partition("t", 0, (produce_before + i) as u64, None, produce_before + i)
                .unwrap();
        }
        let second = consumer.poll(&broker, 1000).unwrap();
        prop_assert!(first.len() <= 10 && second.len() <= 10 + 1);
        prop_assert_eq!(consumer.lag(&broker).unwrap(), 0);
        // No duplicates across polls.
        let mut all: Vec<usize> = first.iter().chain(second.iter()).map(|e| e.value).collect();
        let before_dedup = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), before_dedup, "duplicate delivery");
    }
}
