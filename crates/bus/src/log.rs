//! A single partition: an append-only offset-addressed log with retention.

use crate::error::BusError;

/// One record in a partition, together with broker-assigned metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry<T> {
    /// The offset assigned at append time; unique and dense per partition.
    pub offset: u64,
    /// Producer-supplied timestamp in milliseconds (virtual or wall clock —
    /// the broker only orders by offset, never by time).
    pub timestamp_ms: u64,
    /// Optional partitioning/compaction key.
    pub key: Option<String>,
    /// The payload.
    pub value: T,
}

/// An append-only log for one partition.
///
/// Offsets are dense and never reused; retention trims the head, moving
/// `log_start` forward while `high_watermark` keeps counting.
///
/// # Examples
///
/// ```
/// use dcm_bus::log::PartitionLog;
///
/// let mut log = PartitionLog::new();
/// log.append(0, None, "a");
/// log.append(1, None, "b");
/// let batch = log.fetch(0, 10).unwrap();
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch[1].value, "b");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionLog<T> {
    entries: Vec<Entry<T>>,
    log_start: u64,
}

impl<T> Default for PartitionLog<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PartitionLog<T> {
    /// Creates an empty log starting at offset 0.
    pub fn new() -> Self {
        PartitionLog {
            entries: Vec::new(),
            log_start: 0,
        }
    }

    /// Appends a record and returns its assigned offset.
    pub fn append(&mut self, timestamp_ms: u64, key: Option<String>, value: T) -> u64 {
        let offset = self.high_watermark();
        self.entries.push(Entry {
            offset,
            timestamp_ms,
            key,
            value,
        });
        offset
    }

    /// One past the last appended offset (the offset the next append gets).
    pub fn high_watermark(&self) -> u64 {
        self.log_start + self.entries.len() as u64
    }

    /// The first offset still retained.
    pub fn log_start(&self) -> u64 {
        self.log_start
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads up to `max` entries starting at `offset`.
    ///
    /// Fetching exactly at the high watermark returns an empty slice (the
    /// consumer is caught up); fetching beyond it, or below `log_start`, is
    /// an error.
    ///
    /// # Errors
    ///
    /// [`BusError::OffsetOutOfRange`] when `offset < log_start()` or
    /// `offset > high_watermark()`.
    pub fn fetch(&self, offset: u64, max: usize) -> Result<&[Entry<T>], BusError> {
        let hw = self.high_watermark();
        if offset < self.log_start || offset > hw {
            return Err(BusError::OffsetOutOfRange {
                requested: offset,
                log_start: self.log_start,
                high_watermark: hw,
            });
        }
        let start = (offset - self.log_start) as usize;
        let end = (start + max).min(self.entries.len());
        Ok(&self.entries[start..end])
    }

    /// Drops entries with offsets below `offset` (clamped to the valid
    /// range). Returns the number of entries removed.
    pub fn truncate_before(&mut self, offset: u64) -> usize {
        let target = offset.clamp(self.log_start, self.high_watermark());
        let drop_count = (target - self.log_start) as usize;
        self.entries.drain(..drop_count);
        self.log_start = target;
        drop_count
    }

    /// Keeps at most `max_entries` newest entries. Returns how many were
    /// dropped.
    pub fn enforce_retention(&mut self, max_entries: usize) -> usize {
        if self.entries.len() <= max_entries {
            return 0;
        }
        let drop_to = self.high_watermark() - max_entries as u64;
        self.truncate_before(drop_to)
    }

    /// Drops entries older than `min_timestamp_ms` from the head (stops at
    /// the first retained-by-time entry, preserving offset density).
    pub fn expire_before(&mut self, min_timestamp_ms: u64) -> usize {
        let keep_from = self
            .entries
            .iter()
            .position(|e| e.timestamp_ms >= min_timestamp_ms)
            .unwrap_or(self.entries.len());
        let target = self.log_start + keep_from as u64;
        self.truncate_before(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> PartitionLog<u64> {
        let mut log = PartitionLog::new();
        for i in 0..n {
            let off = log.append(i * 100, None, i);
            assert_eq!(off, i);
        }
        log
    }

    #[test]
    fn offsets_are_dense_from_zero() {
        let log = filled(5);
        assert_eq!(log.high_watermark(), 5);
        assert_eq!(log.log_start(), 0);
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn fetch_returns_window() {
        let log = filled(10);
        let batch = log.fetch(3, 4).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].offset, 3);
        assert_eq!(batch[3].offset, 6);
    }

    #[test]
    fn fetch_at_high_watermark_is_empty() {
        let log = filled(3);
        assert!(log.fetch(3, 10).unwrap().is_empty());
    }

    #[test]
    fn fetch_past_high_watermark_errors() {
        let log = filled(3);
        let err = log.fetch(4, 1).unwrap_err();
        assert_eq!(
            err,
            BusError::OffsetOutOfRange {
                requested: 4,
                log_start: 0,
                high_watermark: 3
            }
        );
    }

    #[test]
    fn truncation_moves_log_start_but_not_offsets() {
        let mut log = filled(10);
        assert_eq!(log.truncate_before(4), 4);
        assert_eq!(log.log_start(), 4);
        assert_eq!(log.high_watermark(), 10);
        let batch = log.fetch(4, 2).unwrap();
        assert_eq!(batch[0].offset, 4);
        assert!(log.fetch(3, 1).is_err());
        // Appending continues at the same watermark.
        assert_eq!(log.append(0, None, 99), 10);
    }

    #[test]
    fn truncate_clamps_out_of_range_targets() {
        let mut log = filled(5);
        assert_eq!(log.truncate_before(100), 5);
        assert_eq!(log.log_start(), 5);
        assert!(log.is_empty());
        assert_eq!(log.truncate_before(0), 0);
    }

    #[test]
    fn retention_by_count() {
        let mut log = filled(10);
        assert_eq!(log.enforce_retention(3), 7);
        assert_eq!(log.log_start(), 7);
        assert_eq!(log.len(), 3);
        assert_eq!(log.enforce_retention(3), 0);
    }

    #[test]
    fn retention_by_time() {
        let mut log = filled(10); // timestamps 0,100,...,900
        assert_eq!(log.expire_before(350), 4);
        assert_eq!(log.log_start(), 4);
        assert_eq!(log.fetch(4, 1).unwrap()[0].timestamp_ms, 400);
    }

    #[test]
    fn keys_are_preserved() {
        let mut log = PartitionLog::new();
        log.append(0, Some("server-1".into()), 1);
        let batch = log.fetch(0, 1).unwrap();
        assert_eq!(batch[0].key.as_deref(), Some("server-1"));
    }
}
