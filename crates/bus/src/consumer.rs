//! Position-tracking consumer over a [`Broker`].
//!
//! Wraps the raw fetch/commit API in the familiar poll-loop shape: the
//! consumer remembers its position per partition, `poll` advances it, and
//! `commit` persists the position into the broker's group-offset table so a
//! restarted consumer resumes where the group left off.

use crate::broker::Broker;
use crate::error::BusError;
use crate::log::Entry;

/// A consumer bound to one group and one topic, reading all partitions.
///
/// # Examples
///
/// ```
/// use dcm_bus::{Broker, GroupConsumer, Retention};
///
/// let mut broker: Broker<&'static str> = Broker::new();
/// broker.create_topic("metrics", 2, Retention::UNBOUNDED)?;
/// broker.produce_to_partition("metrics", 0, 0, None, "a")?;
/// broker.produce_to_partition("metrics", 1, 0, None, "b")?;
///
/// let mut consumer = GroupConsumer::new("controller", "metrics", &broker)?;
/// let batch = consumer.poll(&broker, 10)?;
/// assert_eq!(batch.len(), 2);
/// consumer.commit(&mut broker)?;
/// # Ok::<(), dcm_bus::BusError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupConsumer {
    group: String,
    topic: String,
    // Next offset to read, per partition.
    positions: Vec<u64>,
}

impl GroupConsumer {
    /// Creates a consumer resuming from the group's committed offsets
    /// (0 for never-committed partitions).
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] if the topic does not exist.
    pub fn new<T>(group: &str, topic: &str, broker: &Broker<T>) -> Result<Self, BusError> {
        let partitions = broker.partition_count(topic)?;
        let positions = (0..partitions)
            .map(|p| broker.committed_offset(group, topic, p))
            .collect();
        Ok(GroupConsumer {
            group: group.to_owned(),
            topic: topic.to_owned(),
            positions,
        })
    }

    /// The consumer group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// The subscribed topic.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The next offset this consumer will read from `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range for the subscribed topic.
    pub fn position(&self, partition: u32) -> u64 {
        self.positions[partition as usize]
    }

    /// Reads up to `max_per_partition` new entries from every partition and
    /// advances the in-memory positions (not yet committed).
    ///
    /// If a partition's head was trimmed past our position by retention, the
    /// position snaps forward to the log start (records were lost; the
    /// monitor pipeline tolerates gaps by design).
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] if the topic vanished.
    pub fn poll<T: Clone>(
        &mut self,
        broker: &Broker<T>,
        max_per_partition: usize,
    ) -> Result<Vec<Entry<T>>, BusError> {
        let mut out = Vec::new();
        for p in 0..self.positions.len() as u32 {
            let pos = self.positions[p as usize];
            let batch = match broker.fetch(&self.topic, p, pos, max_per_partition) {
                Ok(batch) => batch,
                Err(BusError::OffsetOutOfRange { log_start, .. }) if log_start > pos => {
                    self.positions[p as usize] = log_start;
                    broker.fetch(&self.topic, p, log_start, max_per_partition)?
                }
                Err(e) => return Err(e),
            };
            if let Some(last) = batch.last() {
                self.positions[p as usize] = last.offset + 1;
            }
            out.extend(batch.iter().cloned());
        }
        // Present a deterministic merge order across partitions.
        out.sort_by_key(|e| (e.timestamp_ms, e.offset));
        Ok(out)
    }

    /// Persists current positions as the group's committed offsets.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] / [`BusError::UnknownPartition`].
    pub fn commit<T>(&self, broker: &mut Broker<T>) -> Result<(), BusError> {
        for (p, &pos) in self.positions.iter().enumerate() {
            broker.commit_offset(&self.group, &self.topic, p as u32, pos)?;
        }
        Ok(())
    }

    /// Total unread entries across partitions.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] / [`BusError::UnknownPartition`].
    pub fn lag<T>(&self, broker: &Broker<T>) -> Result<u64, BusError> {
        let mut total = 0;
        for p in 0..self.positions.len() as u32 {
            let hw = broker.high_watermark(&self.topic, p)?;
            total += hw.saturating_sub(self.positions[p as usize]);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Retention;

    fn setup() -> (Broker<u32>, GroupConsumer) {
        let mut b: Broker<u32> = Broker::new();
        b.create_topic("t", 2, Retention::UNBOUNDED).unwrap();
        let c = GroupConsumer::new("g", "t", &b).unwrap();
        (b, c)
    }

    #[test]
    fn poll_reads_all_partitions_in_timestamp_order() {
        let (mut b, mut c) = setup();
        b.produce_to_partition("t", 0, 30, None, 3).unwrap();
        b.produce_to_partition("t", 1, 10, None, 1).unwrap();
        b.produce_to_partition("t", 1, 20, None, 2).unwrap();
        let batch = c.poll(&b, 10).unwrap();
        let values: Vec<u32> = batch.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![1, 2, 3]);
        // Positions advanced; next poll is empty.
        assert!(c.poll(&b, 10).unwrap().is_empty());
    }

    #[test]
    fn commit_and_resume() {
        let (mut b, mut c) = setup();
        for i in 0..4 {
            b.produce_to_partition("t", 0, i, None, i as u32).unwrap();
        }
        let first = c.poll(&b, 2).unwrap();
        assert_eq!(first.len(), 2);
        c.commit(&mut b).unwrap();
        // A new consumer in the same group resumes after the commit.
        let mut resumed = GroupConsumer::new("g", "t", &b).unwrap();
        let rest = resumed.poll(&b, 10).unwrap();
        let values: Vec<u32> = rest.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![2, 3]);
        // A different group starts from scratch.
        let mut fresh = GroupConsumer::new("other", "t", &b).unwrap();
        assert_eq!(fresh.poll(&b, 10).unwrap().len(), 4);
    }

    #[test]
    fn lag_accounts_for_unread() {
        let (mut b, mut c) = setup();
        for i in 0..5 {
            b.produce_to_partition("t", 0, i, None, i as u32).unwrap();
        }
        assert_eq!(c.lag(&b).unwrap(), 5);
        c.poll(&b, 3).unwrap();
        assert_eq!(c.lag(&b).unwrap(), 2);
    }

    #[test]
    fn position_snaps_forward_after_retention_loss() {
        let mut b: Broker<u32> = Broker::new();
        b.create_topic("t", 1, Retention::by_entries(2)).unwrap();
        let mut c = GroupConsumer::new("g", "t", &b).unwrap();
        for i in 0..10 {
            b.produce_to_partition("t", 0, i, None, i as u32).unwrap();
        }
        // Head trimmed to offset 8; consumer at 0 must skip forward.
        let batch = c.poll(&b, 10).unwrap();
        let values: Vec<u32> = batch.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![8, 9]);
        assert_eq!(c.position(0), 10);
    }

    #[test]
    fn unknown_topic_is_an_error() {
        let b: Broker<u32> = Broker::new();
        assert!(matches!(
            GroupConsumer::new("g", "missing", &b),
            Err(BusError::UnknownTopic { .. })
        ));
    }

    #[test]
    fn accessors() {
        let (_b, c) = setup();
        assert_eq!(c.group(), "g");
        assert_eq!(c.topic(), "t");
        assert_eq!(c.position(0), 0);
    }
}
