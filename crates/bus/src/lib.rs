//! # dcm-bus — in-memory Kafka-style message broker
//!
//! The DCM paper decouples its monitoring agents from the optimization
//! controller with Kafka: agents publish fine-grained metrics once per
//! second, the controller consumes them at its own (15-second) control
//! period. This crate reproduces the semantics that matter for that role:
//!
//! * **Topics** split into **partitions**, each an append-only,
//!   offset-addressed log ([`log::PartitionLog`]).
//! * **Keyed routing** (a server's metrics always land in the same
//!   partition, preserving per-server ordering) or round-robin.
//! * **Consumer groups** with committed offsets, so a controller restart
//!   resumes where it left off ([`GroupConsumer`]).
//! * **Retention** by entry count or age, with consumers that tolerate
//!   head-trim gaps.
//! * A thread-safe facade ([`SharedBroker`]) with blocking poll for live
//!   (non-simulated) deployments.
//!
//! The broker is generic over the payload type, trading Kafka's byte-blob
//! interface for compile-time type safety — serialization is orthogonal to
//! the rate-decoupling semantics the DCM pipeline needs.
//!
//! ## Example
//!
//! ```
//! use dcm_bus::{Broker, GroupConsumer, Retention};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Metric { server: String, cpu: f64 }
//!
//! let mut broker: Broker<Metric> = Broker::new();
//! broker.create_topic("metrics", 4, Retention::by_entries(10_000))?;
//!
//! // A monitor agent publishes, keyed by server so ordering is preserved.
//! broker.produce("metrics", 1_000, Some("tomcat-1".into()),
//!                Metric { server: "tomcat-1".into(), cpu: 0.93 })?;
//!
//! // The controller consumes as a group and commits its progress.
//! let mut consumer = GroupConsumer::new("controller", "metrics", &broker)?;
//! let batch = consumer.poll(&broker, 100)?;
//! assert_eq!(batch.len(), 1);
//! consumer.commit(&mut broker)?;
//! # Ok::<(), dcm_bus::BusError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broker;
pub mod consumer;
pub mod error;
pub mod log;
pub mod shared;

pub use broker::{Broker, Retention};
pub use consumer::GroupConsumer;
pub use error::BusError;
pub use log::Entry;
pub use shared::SharedBroker;
