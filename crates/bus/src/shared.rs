//! Thread-safe broker handle with blocking consumption.
//!
//! Monitor agents in a live deployment run on their own threads and push
//! metrics concurrently while the controller consumes; [`SharedBroker`]
//! provides that concurrent facade over [`Broker`] (in simulation runs the
//! single-threaded [`Broker`] is driven directly from the event loop).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::broker::{Broker, Retention};
use crate::error::BusError;
use crate::log::Entry;

/// A cloneable, thread-safe handle to a [`Broker`].
///
/// # Examples
///
/// ```
/// use dcm_bus::{Retention, SharedBroker};
///
/// let bus: SharedBroker<u32> = SharedBroker::new();
/// bus.create_topic("metrics", 1, Retention::UNBOUNDED)?;
///
/// let producer = bus.clone();
/// std::thread::spawn(move || {
///     producer.produce("metrics", 0, None, 42).unwrap();
/// })
/// .join()
/// .unwrap();
///
/// let batch = bus.fetch_owned("metrics", 0, 0, 10)?;
/// assert_eq!(batch[0].value, 42);
/// # Ok::<(), dcm_bus::BusError>(())
/// ```
#[derive(Debug)]
pub struct SharedBroker<T> {
    inner: Arc<Shared<T>>,
}

#[derive(Debug)]
struct Shared<T> {
    broker: Mutex<Broker<T>>,
    data_arrived: Condvar,
}

impl<T> Clone for SharedBroker<T> {
    fn clone(&self) -> Self {
        SharedBroker {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for SharedBroker<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedBroker<T> {
    /// Creates an empty shared broker.
    pub fn new() -> Self {
        SharedBroker {
            inner: Arc::new(Shared {
                broker: Mutex::new(Broker::new()),
                data_arrived: Condvar::new(),
            }),
        }
    }

    /// See [`Broker::create_topic`].
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the underlying broker.
    pub fn create_topic(
        &self,
        name: &str,
        partitions: u32,
        retention: Retention,
    ) -> Result<(), BusError> {
        self.inner
            .broker
            .lock()
            .create_topic(name, partitions, retention)
    }

    /// See [`Broker::produce`]; wakes blocked consumers.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the underlying broker.
    pub fn produce(
        &self,
        topic: &str,
        timestamp_ms: u64,
        key: Option<String>,
        value: T,
    ) -> Result<(u32, u64), BusError> {
        let result = self
            .inner
            .broker
            .lock()
            .produce(topic, timestamp_ms, key, value);
        if result.is_ok() {
            self.inner.data_arrived.notify_all();
        }
        result
    }

    /// See [`Broker::high_watermark`].
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the underlying broker.
    pub fn high_watermark(&self, topic: &str, partition: u32) -> Result<u64, BusError> {
        self.inner.broker.lock().high_watermark(topic, partition)
    }

    /// See [`Broker::commit_offset`].
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the underlying broker.
    pub fn commit_offset(
        &self,
        group: &str,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<(), BusError> {
        self.inner
            .broker
            .lock()
            .commit_offset(group, topic, partition, offset)
    }

    /// See [`Broker::committed_offset`].
    pub fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> u64 {
        self.inner
            .broker
            .lock()
            .committed_offset(group, topic, partition)
    }

    /// See [`Broker::lag`].
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the underlying broker.
    pub fn lag(&self, group: &str, topic: &str) -> Result<Vec<u64>, BusError> {
        self.inner.broker.lock().lag(group, topic)
    }

    /// Runs `f` with exclusive access to the underlying broker, for batch
    /// operations that need a consistent view.
    pub fn with<R>(&self, f: impl FnOnce(&mut Broker<T>) -> R) -> R {
        f(&mut self.inner.broker.lock())
    }
}

impl<T: Clone> SharedBroker<T> {
    /// Fetches entries as owned clones (the lock cannot escape the call).
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the underlying broker.
    pub fn fetch_owned(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max: usize,
    ) -> Result<Vec<Entry<T>>, BusError> {
        Ok(self
            .inner
            .broker
            .lock()
            .fetch(topic, partition, offset, max)?
            .to_vec())
    }

    /// Like [`SharedBroker::fetch_owned`], but when the consumer is caught
    /// up it blocks until new data arrives or `timeout` elapses (returning
    /// an empty batch on timeout).
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the underlying broker.
    pub fn fetch_blocking(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<Entry<T>>, BusError> {
        let mut broker = self.inner.broker.lock();
        loop {
            let batch = broker.fetch(topic, partition, offset, max)?;
            if !batch.is_empty() {
                return Ok(batch.to_vec());
            }
            if self
                .inner
                .data_arrived
                .wait_for(&mut broker, timeout)
                .timed_out()
            {
                return Ok(Vec::new());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn concurrent_producers_interleave_without_loss() {
        let bus: SharedBroker<u64> = SharedBroker::new();
        bus.create_topic("t", 4, Retention::UNBOUNDED).unwrap();
        let mut handles = vec![];
        for p in 0..4u64 {
            let bus = bus.clone();
            handles.push(thread::spawn(move || {
                for i in 0..250u64 {
                    bus.produce("t", 0, Some(format!("k{p}")), p * 1000 + i)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..4).map(|p| bus.high_watermark("t", p).unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn blocking_fetch_wakes_on_produce() {
        let bus: SharedBroker<u32> = SharedBroker::new();
        bus.create_topic("t", 1, Retention::UNBOUNDED).unwrap();
        let consumer = bus.clone();
        let handle = thread::spawn(move || {
            consumer
                .fetch_blocking("t", 0, 0, 10, Duration::from_secs(5))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        bus.produce("t", 0, None, 9).unwrap();
        let batch = handle.join().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].value, 9);
    }

    #[test]
    fn blocking_fetch_times_out_empty() {
        let bus: SharedBroker<u32> = SharedBroker::new();
        bus.create_topic("t", 1, Retention::UNBOUNDED).unwrap();
        let batch = bus
            .fetch_blocking("t", 0, 0, 10, Duration::from_millis(20))
            .unwrap();
        assert!(batch.is_empty());
    }

    #[test]
    fn with_gives_exclusive_batch_access() {
        let bus: SharedBroker<u32> = SharedBroker::new();
        bus.create_topic("t", 1, Retention::UNBOUNDED).unwrap();
        bus.with(|b| {
            for i in 0..5 {
                b.produce_to_partition("t", 0, i, None, i as u32).unwrap();
            }
        });
        assert_eq!(bus.high_watermark("t", 0).unwrap(), 5);
    }

    #[test]
    fn handle_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<SharedBroker<u32>>();
    }
}
