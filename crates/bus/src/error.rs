//! Error types for broker operations.

use std::fmt;

/// Error returned by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// The named topic does not exist.
    UnknownTopic {
        /// The topic that was requested.
        topic: String,
    },
    /// The topic exists but the partition index is out of range.
    UnknownPartition {
        /// The topic that was requested.
        topic: String,
        /// The out-of-range partition index.
        partition: u32,
    },
    /// A topic with this name already exists.
    TopicExists {
        /// The conflicting topic name.
        topic: String,
    },
    /// The requested offset is below the log start (compacted away) or
    /// above the high watermark.
    OffsetOutOfRange {
        /// Requested offset.
        requested: u64,
        /// First offset still retained.
        log_start: u64,
        /// One past the last appended offset.
        high_watermark: u64,
    },
    /// A topic must have at least one partition.
    ZeroPartitions,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownTopic { topic } => write!(f, "unknown topic `{topic}`"),
            BusError::UnknownPartition { topic, partition } => {
                write!(f, "topic `{topic}` has no partition {partition}")
            }
            BusError::TopicExists { topic } => write!(f, "topic `{topic}` already exists"),
            BusError::OffsetOutOfRange {
                requested,
                log_start,
                high_watermark,
            } => write!(
                f,
                "offset {requested} out of range [{log_start}, {high_watermark})"
            ),
            BusError::ZeroPartitions => write!(f, "topic must have at least one partition"),
        }
    }
}

impl std::error::Error for BusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BusError::UnknownTopic {
            topic: "metrics".into(),
        };
        assert_eq!(e.to_string(), "unknown topic `metrics`");
        let e = BusError::OffsetOutOfRange {
            requested: 9,
            log_start: 10,
            high_watermark: 20,
        };
        assert!(e.to_string().contains("[10, 20)"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BusError>();
    }
}
