//! The broker: named topics, partitioning, consumer-group offsets.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::error::BusError;
use crate::log::{Entry, PartitionLog};

/// Per-topic retention policy, enforced on append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Retention {
    /// Keep at most this many entries per partition (`None` = unbounded).
    pub max_entries: Option<usize>,
    /// Drop head entries older than this many milliseconds relative to the
    /// newest appended timestamp (`None` = unbounded).
    pub max_age_ms: Option<u64>,
}

impl Retention {
    /// Unbounded retention.
    pub const UNBOUNDED: Retention = Retention {
        max_entries: None,
        max_age_ms: None,
    };

    /// Retention bounded by entry count only.
    pub fn by_entries(max_entries: usize) -> Self {
        Retention {
            max_entries: Some(max_entries),
            max_age_ms: None,
        }
    }

    /// Retention bounded by age only.
    pub fn by_age_ms(max_age_ms: u64) -> Self {
        Retention {
            max_entries: None,
            max_age_ms: Some(max_age_ms),
        }
    }
}

#[derive(Debug, Clone)]
struct Topic<T> {
    partitions: Vec<PartitionLog<T>>,
    retention: Retention,
    round_robin_cursor: u32,
}

/// An in-memory, Kafka-style message broker.
///
/// Generic over the payload type `T`, which keeps producers and consumers
/// type-safe without a serialization layer (the paper uses Kafka purely as a
/// rate-decoupling buffer between monitor agents and the controller — the
/// semantics that matter are partitioned ordered logs and consumer-group
/// offset tracking, both of which are faithfully implemented here).
///
/// # Examples
///
/// ```
/// use dcm_bus::{Broker, Retention};
///
/// let mut broker: Broker<String> = Broker::new();
/// broker.create_topic("metrics", 2, Retention::UNBOUNDED)?;
/// broker.produce("metrics", 0, Some("tomcat-1".into()), "cpu=0.93".into())?;
///
/// let batch = broker.fetch("metrics", 0, 0, 100)?;
/// // tomcat-1 hashes to some fixed partition; fetch both to find it
/// let batch1 = broker.fetch("metrics", 1, 0, 100)?;
/// assert_eq!(batch.len() + batch1.len(), 1);
/// # Ok::<(), dcm_bus::BusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Broker<T> {
    topics: BTreeMap<String, Topic<T>>,
    // (group, topic, partition) -> committed offset (next offset to read).
    group_offsets: BTreeMap<(String, String, u32), u64>,
}

impl<T> Default for Broker<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Broker<T> {
    /// Creates a broker with no topics.
    pub fn new() -> Self {
        Broker {
            topics: BTreeMap::new(),
            group_offsets: BTreeMap::new(),
        }
    }

    /// Creates a topic with `partitions` partitions.
    ///
    /// # Errors
    ///
    /// [`BusError::TopicExists`] if the name is taken,
    /// [`BusError::ZeroPartitions`] if `partitions == 0`.
    pub fn create_topic(
        &mut self,
        name: &str,
        partitions: u32,
        retention: Retention,
    ) -> Result<(), BusError> {
        if partitions == 0 {
            return Err(BusError::ZeroPartitions);
        }
        if self.topics.contains_key(name) {
            return Err(BusError::TopicExists { topic: name.into() });
        }
        self.topics.insert(
            name.to_owned(),
            Topic {
                partitions: (0..partitions).map(|_| PartitionLog::new()).collect(),
                retention,
                round_robin_cursor: 0,
            },
        );
        Ok(())
    }

    /// True if the topic exists.
    pub fn has_topic(&self, name: &str) -> bool {
        self.topics.contains_key(name)
    }

    /// Topic names, in sorted order.
    pub fn topics(&self) -> impl Iterator<Item = &str> {
        self.topics.keys().map(String::as_str)
    }

    /// Number of partitions in a topic.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] if the topic does not exist.
    pub fn partition_count(&self, topic: &str) -> Result<u32, BusError> {
        Ok(self.topic(topic)?.partitions.len() as u32)
    }

    fn topic(&self, name: &str) -> Result<&Topic<T>, BusError> {
        self.topics
            .get(name)
            .ok_or_else(|| BusError::UnknownTopic { topic: name.into() })
    }

    fn topic_mut(&mut self, name: &str) -> Result<&mut Topic<T>, BusError> {
        self.topics
            .get_mut(name)
            .ok_or_else(|| BusError::UnknownTopic { topic: name.into() })
    }

    /// Appends a record, routing by key hash (or round-robin when `key` is
    /// `None`). Returns `(partition, offset)`.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] if the topic does not exist.
    pub fn produce(
        &mut self,
        topic: &str,
        timestamp_ms: u64,
        key: Option<String>,
        value: T,
    ) -> Result<(u32, u64), BusError> {
        let t = self.topic_mut(topic)?;
        let n = t.partitions.len() as u32;
        let partition = match &key {
            Some(k) => {
                let mut h = DefaultHasher::new();
                k.hash(&mut h);
                (h.finish() % n as u64) as u32
            }
            None => {
                let p = t.round_robin_cursor % n;
                t.round_robin_cursor = t.round_robin_cursor.wrapping_add(1);
                p
            }
        };
        let log = &mut t.partitions[partition as usize];
        let offset = log.append(timestamp_ms, key, value);
        if let Some(max) = t.retention.max_entries {
            log.enforce_retention(max);
        }
        if let Some(age) = t.retention.max_age_ms {
            log.expire_before(timestamp_ms.saturating_sub(age));
        }
        Ok((partition, offset))
    }

    /// Appends to an explicit partition. Returns the assigned offset.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] / [`BusError::UnknownPartition`].
    pub fn produce_to_partition(
        &mut self,
        topic: &str,
        partition: u32,
        timestamp_ms: u64,
        key: Option<String>,
        value: T,
    ) -> Result<u64, BusError> {
        let t = self.topic_mut(topic)?;
        let n = t.partitions.len() as u32;
        if partition >= n {
            return Err(BusError::UnknownPartition {
                topic: topic.into(),
                partition,
            });
        }
        let log = &mut t.partitions[partition as usize];
        let offset = log.append(timestamp_ms, key, value);
        if let Some(max) = t.retention.max_entries {
            log.enforce_retention(max);
        }
        if let Some(age) = t.retention.max_age_ms {
            log.expire_before(timestamp_ms.saturating_sub(age));
        }
        Ok(offset)
    }

    /// Reads up to `max` entries from `topic`/`partition` starting at
    /// `offset`.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`], [`BusError::UnknownPartition`], or
    /// [`BusError::OffsetOutOfRange`].
    pub fn fetch(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max: usize,
    ) -> Result<&[Entry<T>], BusError> {
        let t = self.topic(topic)?;
        let log =
            t.partitions
                .get(partition as usize)
                .ok_or_else(|| BusError::UnknownPartition {
                    topic: topic.into(),
                    partition,
                })?;
        log.fetch(offset, max)
    }

    /// The next offset to be assigned in `topic`/`partition`.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] / [`BusError::UnknownPartition`].
    pub fn high_watermark(&self, topic: &str, partition: u32) -> Result<u64, BusError> {
        let t = self.topic(topic)?;
        t.partitions
            .get(partition as usize)
            .map(PartitionLog::high_watermark)
            .ok_or_else(|| BusError::UnknownPartition {
                topic: topic.into(),
                partition,
            })
    }

    /// Commits a consumer group's position (the next offset it will read).
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] / [`BusError::UnknownPartition`].
    pub fn commit_offset(
        &mut self,
        group: &str,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<(), BusError> {
        // Validate the target exists so stale groups surface early.
        let n = self.partition_count(topic)?;
        if partition >= n {
            return Err(BusError::UnknownPartition {
                topic: topic.into(),
                partition,
            });
        }
        self.group_offsets
            .insert((group.into(), topic.into(), partition), offset);
        Ok(())
    }

    /// The committed position for a group (0 when never committed).
    pub fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> u64 {
        self.group_offsets
            .get(&(group.into(), topic.into(), partition))
            .copied()
            .unwrap_or(0)
    }

    /// Consumer lag: high watermark minus committed position, per partition.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownTopic`] if the topic does not exist.
    pub fn lag(&self, group: &str, topic: &str) -> Result<Vec<u64>, BusError> {
        let t = self.topic(topic)?;
        Ok((0..t.partitions.len() as u32)
            .map(|p| {
                let hw = t.partitions[p as usize].high_watermark();
                hw.saturating_sub(self.committed_offset(group, topic, p))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> Broker<u32> {
        let mut b = Broker::new();
        b.create_topic("t", 3, Retention::UNBOUNDED).unwrap();
        b
    }

    #[test]
    fn create_topic_validation() {
        let mut b: Broker<u32> = Broker::new();
        assert_eq!(
            b.create_topic("x", 0, Retention::UNBOUNDED),
            Err(BusError::ZeroPartitions)
        );
        b.create_topic("x", 1, Retention::UNBOUNDED).unwrap();
        assert_eq!(
            b.create_topic("x", 1, Retention::UNBOUNDED),
            Err(BusError::TopicExists { topic: "x".into() })
        );
        assert!(b.has_topic("x"));
        assert!(!b.has_topic("y"));
        assert_eq!(b.partition_count("x").unwrap(), 1);
    }

    #[test]
    fn keyed_produce_is_sticky() {
        let mut b = broker();
        let (p1, _) = b.produce("t", 0, Some("k1".into()), 1).unwrap();
        let (p2, _) = b.produce("t", 1, Some("k1".into()), 2).unwrap();
        assert_eq!(p1, p2, "same key must land in same partition");
        let batch = b.fetch("t", p1, 0, 10).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].value, 1);
        assert_eq!(batch[1].value, 2);
    }

    #[test]
    fn unkeyed_produce_round_robins() {
        let mut b = broker();
        let mut partitions = vec![];
        for i in 0..6 {
            let (p, _) = b.produce("t", i, None, i as u32).unwrap();
            partitions.push(p);
        }
        assert_eq!(partitions, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn explicit_partition_produce() {
        let mut b = broker();
        let off = b.produce_to_partition("t", 2, 0, None, 7).unwrap();
        assert_eq!(off, 0);
        assert_eq!(b.high_watermark("t", 2).unwrap(), 1);
        assert_eq!(
            b.produce_to_partition("t", 9, 0, None, 7),
            Err(BusError::UnknownPartition {
                topic: "t".into(),
                partition: 9
            })
        );
    }

    #[test]
    fn unknown_topic_paths() {
        let mut b = broker();
        assert!(matches!(
            b.produce("nope", 0, None, 1),
            Err(BusError::UnknownTopic { .. })
        ));
        assert!(matches!(
            b.fetch("nope", 0, 0, 1),
            Err(BusError::UnknownTopic { .. })
        ));
        assert!(matches!(
            b.commit_offset("g", "nope", 0, 0),
            Err(BusError::UnknownTopic { .. })
        ));
    }

    #[test]
    fn consumer_group_offsets_roundtrip() {
        let mut b = broker();
        for i in 0..5 {
            b.produce_to_partition("t", 0, i, None, i as u32).unwrap();
        }
        assert_eq!(b.committed_offset("g", "t", 0), 0);
        b.commit_offset("g", "t", 0, 3).unwrap();
        assert_eq!(b.committed_offset("g", "t", 0), 3);
        // A different group is independent.
        assert_eq!(b.committed_offset("h", "t", 0), 0);
        assert_eq!(b.lag("g", "t").unwrap(), vec![2, 0, 0]);
    }

    #[test]
    fn retention_by_entries_trims_head() {
        let mut b: Broker<u32> = Broker::new();
        b.create_topic("t", 1, Retention::by_entries(3)).unwrap();
        for i in 0..10 {
            b.produce_to_partition("t", 0, i, None, i as u32).unwrap();
        }
        assert_eq!(b.high_watermark("t", 0).unwrap(), 10);
        // Only offsets 7..10 retained.
        assert!(b.fetch("t", 0, 6, 1).is_err());
        let batch = b.fetch("t", 0, 7, 10).unwrap();
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn retention_by_age_trims_head() {
        let mut b: Broker<u32> = Broker::new();
        b.create_topic("t", 1, Retention::by_age_ms(100)).unwrap();
        b.produce_to_partition("t", 0, 0, None, 0).unwrap();
        b.produce_to_partition("t", 0, 50, None, 1).unwrap();
        b.produce_to_partition("t", 0, 200, None, 2).unwrap();
        // Entries older than 200-100=100 ms dropped: offset 0 (t=0), 1 (t=50).
        let start_err = b.fetch("t", 0, 0, 1).unwrap_err();
        assert!(matches!(
            start_err,
            BusError::OffsetOutOfRange { log_start: 2, .. }
        ));
    }

    #[test]
    fn fetch_caught_up_consumer_gets_empty() {
        let mut b = broker();
        b.produce_to_partition("t", 0, 0, None, 1).unwrap();
        let batch = b.fetch("t", 0, 1, 10).unwrap();
        assert!(batch.is_empty());
    }
}
