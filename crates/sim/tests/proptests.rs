//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use dcm_sim::dist::{AliasTable, Dist, Sample};
use dcm_sim::engine::Engine;
use dcm_sim::rng::SimRng;
use dcm_sim::stats::{OnlineStats, RateMeter, SampleQuantiles, StepGauge};
use dcm_sim::time::{SimDuration, SimTime};

proptest! {
    /// Events always fire in non-decreasing time order, with ties in
    /// schedule order, regardless of insertion order.
    #[test]
    fn engine_fires_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine: Engine<Vec<(u64, usize)>> = Engine::new();
        let mut fired = Vec::new();
        for (seq, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<(u64, usize)>, _| {
                w.push((t, seq));
            });
        }
        engine.run(&mut fired);
        prop_assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset suppresses exactly that subset.
    #[test]
    fn engine_cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine: Engine<Vec<usize>> = Engine::new();
        let mut fired = Vec::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                engine.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<usize>, _| w.push(i))
            })
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                engine.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        engine.run(&mut fired);
        fired.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// Merging two Welford summaries equals one summary over the
    /// concatenation.
    #[test]
    fn stats_merge_is_concatenation(
        a in prop::collection::vec(-1e6f64..1e6, 0..200),
        b in prop::collection::vec(-1e6f64..1e6, 0..200),
    ) {
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        let full: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(left.count(), full.count());
        if full.count() > 0 {
            prop_assert!((left.mean() - full.mean()).abs() < 1e-6);
            prop_assert!((left.sample_variance() - full.sample_variance()).abs()
                / full.sample_variance().max(1.0) < 1e-6);
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut q: SampleQuantiles = values.iter().copied().collect();
        let lo = q.quantile(0.0).unwrap();
        let med = q.quantile(0.5).unwrap();
        let hi = q.quantile(1.0).unwrap();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= med && med <= hi);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
    }

    /// The step gauge's time-weighted mean lies within the value range.
    #[test]
    fn gauge_mean_is_bounded(steps in prop::collection::vec((0u64..1000, 0.0f64..100.0), 1..50)) {
        let mut sorted = steps.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut gauge = StepGauge::new(SimTime::ZERO, 0.0);
        for &(t, v) in &sorted {
            gauge.set(SimTime::from_nanos(t), v);
        }
        let mean = gauge.time_weighted_mean(SimTime::ZERO, SimTime::from_nanos(2000));
        prop_assert!((0.0..=100.0).contains(&mean), "mean {mean}");
    }

    /// RateMeter windows account for every event exactly once.
    #[test]
    fn rate_meter_conserves_events(times in prop::collection::vec(0.0f64..100.0, 0..300)) {
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut meter = RateMeter::new(SimDuration::from_secs(1));
        for &t in &sorted {
            meter.record(SimTime::from_secs_f64(t));
        }
        let series = meter.finish(SimTime::from_secs(101));
        let total: f64 = series.iter().map(|(_, rate)| rate).sum();
        prop_assert!((total - sorted.len() as f64).abs() < 1e-6);
    }

    /// Samples from every distribution are non-negative and finite.
    #[test]
    fn distributions_sample_valid_values(seed in any::<u64>(), which in 0usize..6) {
        let dist = match which {
            0 => Dist::constant(1.5),
            1 => Dist::uniform(0.5, 2.0),
            2 => Dist::exponential(3.0),
            3 => Dist::truncated_normal(1.0, 2.0),
            4 => Dist::log_normal(-1.0, 0.8),
            _ => Dist::erlang(3, 10.0),
        };
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let x = dist.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0, "{x} from {dist}");
        }
    }

    /// The alias table only ever returns valid indices, and hits every
    /// positive-weight category eventually.
    #[test]
    fn alias_table_indices_valid(weights in prop::collection::vec(0.0f64..10.0, 1..30), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SimRng::seed_from(seed);
        let mut seen = vec![false; weights.len()];
        for _ in 0..2000 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "zero-weight category sampled");
            seen[idx] = true;
        }
        // Categories holding at least 5% of the mass must appear in 2000
        // draws (probability of missing ≈ 1e-45).
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            if w / total >= 0.05 {
                prop_assert!(seen[i], "category {i} with mass {} never sampled", w / total);
            }
        }
    }

    /// run_until never executes events beyond the deadline and leaves the
    /// clock exactly at it.
    #[test]
    fn run_until_respects_deadline(
        times in prop::collection::vec(0u64..2000, 1..100),
        deadline in 0u64..2000,
    ) {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut fired: Vec<u64> = Vec::new();
        for &t in &times {
            engine.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        engine.run_until(&mut fired, SimTime::from_nanos(deadline));
        prop_assert!(fired.iter().all(|&t| t <= deadline));
        let expected = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(fired.len(), expected);
        prop_assert_eq!(engine.now(), SimTime::from_nanos(deadline));
    }
}
