//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use dcm_sim::dist::{AliasTable, Dist, Sample};
use dcm_sim::engine::Engine;
use dcm_sim::rng::SimRng;
use dcm_sim::stats::{Histogram, OnlineStats, RateMeter, SampleQuantiles, StepGauge};
use dcm_sim::time::{SimDuration, SimTime};

proptest! {
    /// Events always fire in non-decreasing time order, with ties in
    /// schedule order, regardless of insertion order.
    #[test]
    fn engine_fires_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine: Engine<Vec<(u64, usize)>> = Engine::new();
        let mut fired = Vec::new();
        for (seq, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<(u64, usize)>, _| {
                w.push((t, seq));
            });
        }
        engine.run(&mut fired);
        prop_assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset suppresses exactly that subset.
    #[test]
    fn engine_cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine: Engine<Vec<usize>> = Engine::new();
        let mut fired = Vec::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                engine.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<usize>, _| w.push(i))
            })
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                engine.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        engine.run(&mut fired);
        fired.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// Merging two Welford summaries equals one summary over the
    /// concatenation.
    #[test]
    fn stats_merge_is_concatenation(
        a in prop::collection::vec(-1e6f64..1e6, 0..200),
        b in prop::collection::vec(-1e6f64..1e6, 0..200),
    ) {
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        let full: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(left.count(), full.count());
        if full.count() > 0 {
            prop_assert!((left.mean() - full.mean()).abs() < 1e-6);
            prop_assert!((left.sample_variance() - full.sample_variance()).abs()
                / full.sample_variance().max(1.0) < 1e-6);
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut q: SampleQuantiles = values.iter().copied().collect();
        let lo = q.quantile(0.0).unwrap();
        let med = q.quantile(0.5).unwrap();
        let hi = q.quantile(1.0).unwrap();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= med && med <= hi);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
    }

    /// The step gauge's time-weighted mean lies within the value range.
    #[test]
    fn gauge_mean_is_bounded(steps in prop::collection::vec((0u64..1000, 0.0f64..100.0), 1..50)) {
        let mut sorted = steps.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut gauge = StepGauge::new(SimTime::ZERO, 0.0);
        for &(t, v) in &sorted {
            gauge.set(SimTime::from_nanos(t), v);
        }
        let mean = gauge.time_weighted_mean(SimTime::ZERO, SimTime::from_nanos(2000));
        prop_assert!((0.0..=100.0).contains(&mean), "mean {mean}");
    }

    /// RateMeter windows account for every event exactly once.
    #[test]
    fn rate_meter_conserves_events(times in prop::collection::vec(0.0f64..100.0, 0..300)) {
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut meter = RateMeter::new(SimDuration::from_secs(1));
        for &t in &sorted {
            meter.record(SimTime::from_secs_f64(t));
        }
        let series = meter.finish(SimTime::from_secs(101));
        let total: f64 = series.iter().map(|(_, rate)| rate).sum();
        prop_assert!((total - sorted.len() as f64).abs() < 1e-6);
    }

    /// Samples from every distribution are non-negative and finite.
    #[test]
    fn distributions_sample_valid_values(seed in any::<u64>(), which in 0usize..6) {
        let dist = match which {
            0 => Dist::constant(1.5),
            1 => Dist::uniform(0.5, 2.0),
            2 => Dist::exponential(3.0),
            3 => Dist::truncated_normal(1.0, 2.0),
            4 => Dist::log_normal(-1.0, 0.8),
            _ => Dist::erlang(3, 10.0),
        };
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let x = dist.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0, "{x} from {dist}");
        }
    }

    /// The alias table only ever returns valid indices, and hits every
    /// positive-weight category eventually.
    #[test]
    fn alias_table_indices_valid(weights in prop::collection::vec(0.0f64..10.0, 1..30), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SimRng::seed_from(seed);
        let mut seen = vec![false; weights.len()];
        for _ in 0..2000 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "zero-weight category sampled");
            seen[idx] = true;
        }
        // Categories holding at least 5% of the mass must appear in 2000
        // draws (probability of missing ≈ 1e-45).
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            if w / total >= 0.05 {
                prop_assert!(seen[i], "category {i} with mass {} never sampled", w / total);
            }
        }
    }

    /// Merging histograms equals histogramming the concatenated stream:
    /// every bucket (including under/overflow) and the total count match
    /// exactly, and the mean to float tolerance.
    #[test]
    fn histogram_merge_is_concatenation(
        a in prop::collection::vec(-50.0f64..150.0, 0..200),
        b in prop::collection::vec(-50.0f64..150.0, 0..200),
    ) {
        let record_all = |xs: &[f64]| {
            let mut h = Histogram::new(0.0, 100.0, 16).unwrap();
            xs.iter().for_each(|&x| h.record(x));
            h
        };
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b)).unwrap();
        let full = record_all(&a.iter().chain(b.iter()).copied().collect::<Vec<_>>());
        prop_assert_eq!(merged.count(), full.count());
        prop_assert_eq!(merged.underflow(), full.underflow());
        prop_assert_eq!(merged.overflow(), full.overflow());
        for i in 0..merged.num_bins() {
            prop_assert_eq!(merged.bin_count(i), full.bin_count(i), "bin {}", i);
        }
        prop_assert!((merged.mean() - full.mean()).abs() <= 1e-9 * full.mean().abs() + 1e-12);
    }

    /// Histogram merge is commutative and associative: bucket counts are
    /// integers, so any merge order yields the identical histogram (sums
    /// compared to float tolerance via the mean).
    #[test]
    fn histogram_merge_is_commutative_and_associative(
        a in prop::collection::vec(-50.0f64..150.0, 0..120),
        b in prop::collection::vec(-50.0f64..150.0, 0..120),
        c in prop::collection::vec(-50.0f64..150.0, 0..120),
    ) {
        let record_all = |xs: &[f64]| {
            let mut h = Histogram::new(0.0, 100.0, 8).unwrap();
            xs.iter().for_each(|&x| h.record(x));
            h
        };
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        // Commutativity: a+b vs b+a.
        let mut ab = ha.clone();
        ab.merge(&hb).unwrap();
        let mut ba = hb.clone();
        ba.merge(&ha).unwrap();
        prop_assert_eq!(&ab, &ba);
        // Associativity: (a+b)+c vs a+(b+c).
        let mut left = ab;
        left.merge(&hc).unwrap();
        let mut bc = hb.clone();
        bc.merge(&hc).unwrap();
        let mut right = ha.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.count(), right.count());
        for i in 0..left.num_bins() {
            prop_assert_eq!(left.bin_count(i), right.bin_count(i), "bin {}", i);
        }
        prop_assert!((left.mean() - right.mean()).abs() <= 1e-9 * right.mean().abs() + 1e-12);
    }

    /// Histogram binning mismatches are rejected without touching the
    /// receiver.
    #[test]
    fn histogram_merge_rejects_mismatched_binning(xs in prop::collection::vec(0.0f64..10.0, 1..50)) {
        let mut h = Histogram::new(0.0, 10.0, 8).unwrap();
        xs.iter().for_each(|&x| h.record(x));
        let before = h.clone();
        prop_assert!(h.merge(&Histogram::new(0.0, 10.0, 9).unwrap()).is_err());
        prop_assert!(h.merge(&Histogram::new(0.0, 12.0, 8).unwrap()).is_err());
        prop_assert_eq!(&h, &before);
    }

    /// Histogram quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_are_monotone(
        xs in prop::collection::vec(0.0f64..100.0, 1..300),
        qs in prop::collection::vec(0.0f64..=1.0, 2..20),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 20).unwrap();
        xs.iter().for_each(|&x| h.record(x));
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let values: Vec<f64> = sorted_q.iter().map(|&q| h.quantile(q).unwrap()).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantile not monotone: {:?}", values);
        }
    }

    /// Merging sample buffers conserves the observation count and yields
    /// exactly the quantiles of the concatenated stream, regardless of how
    /// the observations were grouped or ordered across buffers.
    #[test]
    fn sample_quantile_merge_is_concatenation(
        a in prop::collection::vec(-1e6f64..1e6, 0..200),
        b in prop::collection::vec(-1e6f64..1e6, 0..200),
        c in prop::collection::vec(-1e6f64..1e6, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let collect = |xs: &[f64]| xs.iter().copied().collect::<SampleQuantiles>();
        let (qa, qb, qc) = (collect(&a), collect(&b), collect(&c));
        // (a+b)+c in merge order vs c+(b+a) vs one buffer over everything.
        let mut left = qa.clone();
        left.merge(&qb);
        left.merge(&qc);
        let mut right = qc.clone();
        let mut ba = qb;
        ba.merge(&qa);
        right.merge(&ba);
        let mut full = collect(&a);
        full.extend(b.iter().copied());
        full.extend(c.iter().copied());
        prop_assert_eq!(left.len(), a.len() + b.len() + c.len());
        prop_assert_eq!(right.len(), left.len());
        prop_assert_eq!(full.len(), left.len());
        // Quantiles over a sorted multiset: identical for every grouping.
        prop_assert_eq!(left.quantile(q), right.quantile(q));
        prop_assert_eq!(left.quantile(q), full.quantile(q));
    }

    /// run_until never executes events beyond the deadline and leaves the
    /// clock exactly at it.
    #[test]
    fn run_until_respects_deadline(
        times in prop::collection::vec(0u64..2000, 1..100),
        deadline in 0u64..2000,
    ) {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        let mut fired: Vec<u64> = Vec::new();
        for &t in &times {
            engine.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        engine.run_until(&mut fired, SimTime::from_nanos(deadline));
        prop_assert!(fired.iter().all(|&t| t <= deadline));
        let expected = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(fired.len(), expected);
        prop_assert_eq!(engine.now(), SimTime::from_nanos(deadline));
    }
}
