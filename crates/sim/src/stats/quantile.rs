//! Quantile estimation: exact (sorted buffer) and streaming (P² algorithm).

use serde::{Deserialize, Serialize};

/// Exact quantiles over a retained sample buffer.
///
/// Retains every observation, so use for bounded experiment windows (the
/// per-run response-time distributions in the reproduction are at most a few
/// hundred thousand points). For unbounded streams use [`P2Quantile`].
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::SampleQuantiles;
///
/// let mut q = SampleQuantiles::new();
/// for x in 1..=100 {
///     q.record(x as f64);
/// }
/// assert_eq!(q.quantile(0.5), Some(50.5));
/// assert_eq!(q.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleQuantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleQuantiles {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SampleQuantiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation. NaN values are ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between order
    /// statistics; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered at record"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = q * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Convenience accessor for the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Drops all observations.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }

    /// Absorbs `other`'s retained samples — quantiles of the result are
    /// exactly the quantiles of the concatenated observation streams, in
    /// any merge order or grouping.
    pub fn merge(&mut self, other: &SampleQuantiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = self.samples.is_empty();
    }
}

impl Extend<f64> for SampleQuantiles {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for SampleQuantiles {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut q = SampleQuantiles::new();
        q.extend(iter);
        q
    }
}

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac 1985):
/// O(1) memory, no retained samples.
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 0..10_000 {
///     p95.record((i % 100) as f64);
/// }
/// let est = p95.estimate().unwrap();
/// assert!((est - 94.0).abs() < 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    // Marker heights, positions, and desired positions (5 markers).
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "P2 quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile parameter.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Records one observation. NaN values are ignored.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
                for (h, &v) in self.heights.iter_mut().zip(self.initial.iter()) {
                    *h = v;
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }

        // Adjust interior markers with parabolic (fall back to linear) moves.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate; `None` with fewer than one observation. With fewer
    /// than five observations the estimate is the exact sample quantile.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
            let rank = (self.q * (v.len() - 1) as f64).round() as usize;
            return Some(v[rank]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn exact_quantiles_interpolate() {
        let mut q: SampleQuantiles = (1..=4).map(|x| x as f64).collect();
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(4.0));
        assert_eq!(q.median(), Some(2.5));
        assert_eq!(q.quantile(1.0 / 3.0), Some(2.0));
    }

    #[test]
    fn exact_quantiles_empty_and_nan() {
        let mut q = SampleQuantiles::new();
        assert_eq!(q.quantile(0.5), None);
        q.record(f64::NAN);
        assert!(q.is_empty());
        q.record(7.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.quantile(0.99), Some(7.0));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn exact_quantile_rejects_out_of_range() {
        let mut q: SampleQuantiles = [1.0].into_iter().collect();
        let _ = q.quantile(1.5);
    }

    #[test]
    fn p2_tracks_uniform_quantiles() {
        let mut rng = SimRng::seed_from(42);
        let mut p50 = P2Quantile::new(0.5);
        let mut p95 = P2Quantile::new(0.95);
        for _ in 0..100_000 {
            let x = rng.next_f64() * 100.0;
            p50.record(x);
            p95.record(x);
        }
        assert!((p50.estimate().unwrap() - 50.0).abs() < 1.5);
        assert!((p95.estimate().unwrap() - 95.0).abs() < 1.5);
    }

    #[test]
    fn p2_tracks_exponential_tail() {
        // P99 of Exp(1) is ln(100) ≈ 4.605.
        let mut rng = SimRng::seed_from(7);
        let mut p99 = P2Quantile::new(0.99);
        for _ in 0..200_000 {
            p99.record(-(1.0 - rng.next_f64()).ln());
        }
        let est = p99.estimate().unwrap();
        assert!((est - 4.605).abs() < 0.35, "p99 {est}");
    }

    #[test]
    fn p2_small_sample_behaviour() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.record(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.record(1.0);
        p.record(2.0);
        let est = p.estimate().unwrap();
        assert!((1.0..=3.0).contains(&est));
        assert_eq!(p.count(), 3);
        assert_eq!(p.q(), 0.5);
    }

    #[test]
    #[should_panic(expected = "P2 quantile must be in (0,1)")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn p2_agrees_with_exact_on_bimodal_data() {
        let mut rng = SimRng::seed_from(99);
        let mut p2 = P2Quantile::new(0.9);
        let mut exact = SampleQuantiles::new();
        for _ in 0..50_000 {
            let x = if rng.next_f64() < 0.8 {
                rng.next_f64() * 10.0
            } else {
                90.0 + rng.next_f64() * 10.0
            };
            p2.record(x);
            exact.record(x);
        }
        let e = exact.quantile(0.9).unwrap();
        let p = p2.estimate().unwrap();
        assert!((p - e).abs() < 6.0, "p2 {p} vs exact {e}");
    }
}
