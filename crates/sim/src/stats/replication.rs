//! Replication analysis: aggregate a metric across independent simulation
//! runs (different seeds) into mean ± confidence interval.
//!
//! Simulation results are random variables; a single run of a bursty
//! scenario proves little. The experiment harness runs each configuration
//! under several seeds and reports Student-t confidence intervals.

use serde::{Deserialize, Serialize};

use super::OnlineStats;

/// Two-sided Student-t critical values at 95 % confidence, indexed by
/// degrees of freedom (1-based; `[0]` unused). Beyond 30 df the normal
/// approximation (1.96) is used.
const T_95: [f64; 31] = [
    f64::NAN,
    12.706,
    4.303,
    3.182,
    2.776,
    2.571,
    2.447,
    2.365,
    2.306,
    2.262,
    2.228,
    2.201,
    2.179,
    2.160,
    2.145,
    2.131,
    2.120,
    2.110,
    2.101,
    2.093,
    2.086,
    2.080,
    2.074,
    2.069,
    2.064,
    2.060,
    2.056,
    2.052,
    2.048,
    2.045,
    2.042,
];

/// Two-sided 95 % Student-t critical value for the given degrees of
/// freedom (`df >= 1`; the normal 1.96 beyond 30).
///
/// # Panics
///
/// Panics if `df == 0`.
pub fn t_critical_95(df: usize) -> f64 {
    assert!(df >= 1, "degrees of freedom must be >= 1");
    if df <= 30 {
        T_95[df]
    } else {
        1.96
    }
}

/// A metric observed across independent replications.
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::Replications;
///
/// let reps: Replications = [10.0, 11.0, 9.5, 10.5, 10.0].into_iter().collect();
/// let (lo, hi) = reps.confidence_interval_95().unwrap();
/// assert!(lo < 10.2 && 10.2 < hi);
/// assert!((reps.mean() - 10.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Replications {
    stats: OnlineStats,
}

impl Replications {
    /// Creates an empty set.
    pub fn new() -> Self {
        Replications {
            stats: OnlineStats::new(),
        }
    }

    /// Records one replication's metric value.
    pub fn record(&mut self, value: f64) {
        self.stats.record(value);
    }

    /// Number of replications.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean across replications.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sample standard deviation across replications.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Standard error of the mean; `None` with fewer than two
    /// replications.
    pub fn standard_error(&self) -> Option<f64> {
        if self.stats.count() < 2 {
            None
        } else {
            Some(self.stats.std_dev() / (self.stats.count() as f64).sqrt())
        }
    }

    /// Two-sided 95 % confidence interval for the mean (Student t);
    /// `None` with fewer than two replications.
    pub fn confidence_interval_95(&self) -> Option<(f64, f64)> {
        let se = self.standard_error()?;
        let df = (self.stats.count() - 1) as usize;
        let half = t_critical_95(df) * se;
        Some((self.mean() - half, self.mean() + half))
    }

    /// The half-width of the 95 % confidence interval, if defined.
    pub fn half_width_95(&self) -> Option<f64> {
        self.confidence_interval_95()
            .map(|(lo, hi)| (hi - lo) / 2.0)
    }

    /// Formats as `mean ± half-width` with the given decimals.
    pub fn display(&self, decimals: usize) -> String {
        match self.half_width_95() {
            Some(half) => format!("{:.decimals$} ± {:.decimals$}", self.mean(), half),
            None => format!("{:.decimals$}", self.mean()),
        }
    }
}

impl FromIterator<f64> for Replications {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut reps = Replications::new();
        for v in iter {
            reps.record(v);
        }
        reps
    }
}

impl Extend<f64> for Replications {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_boundaries() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(31) - 1.96).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn zero_df_panics() {
        let _ = t_critical_95(0);
    }

    #[test]
    fn single_replication_has_no_interval() {
        let reps: Replications = [5.0].into_iter().collect();
        assert_eq!(reps.confidence_interval_95(), None);
        assert_eq!(reps.display(1), "5.0");
    }

    #[test]
    fn interval_matches_hand_computation() {
        // n=4, values 1,2,3,4: mean 2.5, s = sqrt(5/3) ≈ 1.29099,
        // se = s/2 ≈ 0.6455, t(3) = 3.182 → half ≈ 2.0540.
        let reps: Replications = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        let (lo, hi) = reps.confidence_interval_95().unwrap();
        assert!((reps.mean() - 2.5).abs() < 1e-12);
        assert!(
            ((hi - lo) / 2.0 - 2.0540).abs() < 1e-3,
            "half {}",
            (hi - lo) / 2.0
        );
        assert!(lo < 2.5 && hi > 2.5);
    }

    #[test]
    fn tighter_with_more_replications() {
        // Same per-replication variance (alternating ±1 around 10); more
        // replications must shrink the interval.
        let pattern = |n: usize| -> Replications {
            (0..n)
                .map(|i| if i % 2 == 0 { 9.0 } else { 11.0 })
                .collect()
        };
        let many = pattern(30);
        let few = pattern(4);
        assert!(many.half_width_95().unwrap() < few.half_width_95().unwrap());
    }

    #[test]
    fn display_formats() {
        let reps: Replications = [1.0, 2.0, 3.0].into_iter().collect();
        let text = reps.display(2);
        assert!(text.starts_with("2.00 ± "), "{text}");
    }
}
