//! Time-indexed measurement recording.
//!
//! Two kinds of signals appear in the experiments:
//!
//! * **Point series** ([`TimeSeries`]) — discrete samples such as per-window
//!   throughput, recorded at their timestamps.
//! * **Step gauges** ([`StepGauge`]) — piecewise-constant values such as
//!   "active threads" or "number of VMs", where *time-weighted* averages are
//!   the meaningful aggregate (a CPU that is busy 80 % of a window should
//!   report 0.8 regardless of how many times the value changed).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A sequence of `(time, value)` samples in non-decreasing time order.
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::TimeSeries;
/// use dcm_sim::time::SimTime;
///
/// let mut ts = TimeSeries::new();
/// ts.push(SimTime::from_secs(1), 10.0);
/// ts.push(SimTime::from_secs(2), 20.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.mean(), Some(15.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the last recorded timestamp.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= at),
            "time series must be appended in order"
        );
        self.points.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterator over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Samples with `start <= t < end`.
    pub fn range(&self, start: SimTime, end: SimTime) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points
            .iter()
            .copied()
            .skip_while(move |&(t, _)| t < start)
            .take_while(move |&(t, _)| t < end)
    }

    /// Unweighted mean of sample values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Maximum sample value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Borrow the raw samples.
    pub fn as_slice(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

/// A piecewise-constant signal supporting time-weighted integration.
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::StepGauge;
/// use dcm_sim::time::SimTime;
///
/// let mut g = StepGauge::new(SimTime::ZERO, 0.0);
/// g.set(SimTime::from_secs(2), 10.0);
/// // 2 s at 0.0 then 2 s at 10.0 → time-weighted mean 5.0
/// let avg = g.time_weighted_mean(SimTime::ZERO, SimTime::from_secs(4));
/// assert_eq!(avg, 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepGauge {
    // Change points: value holds from its timestamp until the next one.
    steps: Vec<(SimTime, f64)>,
}

impl StepGauge {
    /// Creates a gauge whose value is `initial` from time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        StepGauge {
            steps: vec![(start, initial)],
        }
    }

    /// Sets the value from time `at` onward.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the last change point.
    pub fn set(&mut self, at: SimTime, value: f64) {
        let last = self.steps.last().expect("gauge always has an initial step");
        debug_assert!(last.0 <= at, "gauge must be updated in time order");
        if last.0 == at {
            // Same-instant update replaces the value.
            let idx = self.steps.len() - 1;
            self.steps[idx].1 = value;
        } else if last.1 != value {
            self.steps.push((at, value));
        }
    }

    /// Adjusts the value by `delta` from time `at` onward (useful for
    /// counters such as active threads).
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let current = self.value();
        self.set(at, current + delta);
    }

    /// The current (latest) value.
    pub fn value(&self) -> f64 {
        self.steps
            .last()
            .expect("gauge always has an initial step")
            .1
    }

    /// The value in effect at time `at` (the last change point at or before
    /// `at`; the initial value if `at` precedes all change points).
    pub fn value_at(&self, at: SimTime) -> f64 {
        match self.steps.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(i) => self.steps[i].1,
            Err(0) => self.steps[0].1,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Integral of the signal over `[start, end)` divided by the interval
    /// length — the time-weighted mean. Returns the value at `start` when
    /// the interval is empty.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> f64 {
        if end <= start {
            return self.value_at(start);
        }
        let total = (end - start).as_secs_f64();
        let mut integral = 0.0;
        let mut cursor = start;
        let mut value = self.value_at(start);
        for &(t, v) in self.steps.iter().filter(|&&(t, _)| t > start && t < end) {
            integral += value * (t - cursor).as_secs_f64();
            cursor = t;
            value = v;
        }
        integral += value * (end - cursor).as_secs_f64();
        integral / total
    }

    /// Maximum value attained within `[start, end)` (including the value
    /// carried into the interval).
    pub fn max_over(&self, start: SimTime, end: SimTime) -> f64 {
        let mut max = self.value_at(start);
        for &(_, v) in self.steps.iter().filter(|&&(t, _)| t > start && t < end) {
            max = max.max(v);
        }
        max
    }

    /// Change points as a time series (for plotting/export).
    pub fn to_series(&self) -> TimeSeries {
        self.steps.iter().copied().collect()
    }
}

/// Accumulates a count over fixed windows and reports per-window rates
/// (e.g. completed requests/second per 1-second window).
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::RateMeter;
/// use dcm_sim::time::{SimDuration, SimTime};
///
/// let mut m = RateMeter::new(SimDuration::from_secs(1));
/// m.record(SimTime::from_secs_f64(0.2));
/// m.record(SimTime::from_secs_f64(0.7));
/// m.record(SimTime::from_secs_f64(1.1));
/// let windows = m.finish(SimTime::from_secs(2));
/// assert_eq!(windows.len(), 2);
/// assert_eq!(windows.as_slice()[0].1, 2.0); // 2 events in first second
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateMeter {
    window: SimDuration,
    current_window_start: SimTime,
    current_count: u64,
    series: TimeSeries,
}

impl RateMeter {
    /// Creates a meter with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate window must be positive");
        RateMeter {
            window,
            current_window_start: SimTime::ZERO,
            current_count: 0,
            series: TimeSeries::new(),
        }
    }

    /// Records one event at time `at`, flushing any windows that closed
    /// before `at`.
    pub fn record(&mut self, at: SimTime) {
        self.roll_to(at);
        self.current_count += 1;
    }

    /// Flushes windows that end at or before `at` into the series (emitting
    /// zero-rate windows for idle gaps).
    fn roll_to(&mut self, at: SimTime) {
        while at >= self.current_window_start + self.window {
            let end = self.current_window_start + self.window;
            let rate = self.current_count as f64 / self.window.as_secs_f64();
            self.series.push(self.current_window_start, rate);
            self.current_window_start = end;
            self.current_count = 0;
        }
    }

    /// Closes out through `end` and returns the per-window rate series
    /// (window start time → events/sec).
    pub fn finish(mut self, end: SimTime) -> TimeSeries {
        self.roll_to(end);
        self.series
    }

    /// The completed windows so far, without consuming the meter.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn series_mean_max_last() {
        let ts: TimeSeries = [(t(0.0), 1.0), (t(1.0), 3.0), (t(2.0), 2.0)]
            .into_iter()
            .collect();
        assert_eq!(ts.mean(), Some(2.0));
        assert_eq!(ts.max(), Some(3.0));
        assert_eq!(ts.last(), Some((t(2.0), 2.0)));
        assert_eq!(ts.range(t(0.5), t(2.0)).count(), 1);
    }

    #[test]
    fn empty_series_is_safe() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.max(), None);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = StepGauge::new(SimTime::ZERO, 1.0);
        g.set(t(1.0), 3.0);
        g.set(t(3.0), 0.0);
        // [0,4): 1*1 + 3*2 + 0*1 = 7 over 4 seconds
        assert!((g.time_weighted_mean(SimTime::ZERO, t(4.0)) - 1.75).abs() < 1e-12);
        // Sub-interval [2,4): 3*1 + 0*1 = 3 over 2
        assert!((g.time_weighted_mean(t(2.0), t(4.0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gauge_value_at_lookup() {
        let mut g = StepGauge::new(t(1.0), 5.0);
        g.set(t(3.0), 7.0);
        assert_eq!(g.value_at(t(0.0)), 5.0);
        assert_eq!(g.value_at(t(1.0)), 5.0);
        assert_eq!(g.value_at(t(2.9)), 5.0);
        assert_eq!(g.value_at(t(3.0)), 7.0);
        assert_eq!(g.value_at(t(10.0)), 7.0);
        assert_eq!(g.value(), 7.0);
    }

    #[test]
    fn gauge_add_and_same_instant_set() {
        let mut g = StepGauge::new(SimTime::ZERO, 0.0);
        g.add(t(1.0), 2.0);
        g.add(t(1.0), 3.0); // same instant: replaces, cumulative value 5
        assert_eq!(g.value(), 5.0);
        g.add(t(2.0), -5.0);
        assert_eq!(g.value(), 0.0);
        assert_eq!(g.max_over(SimTime::ZERO, t(3.0)), 5.0);
    }

    #[test]
    fn gauge_empty_interval_returns_instant_value() {
        let g = StepGauge::new(SimTime::ZERO, 9.0);
        assert_eq!(g.time_weighted_mean(t(1.0), t(1.0)), 9.0);
    }

    #[test]
    fn rate_meter_emits_idle_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        m.record(t(0.5));
        m.record(t(3.5));
        let ts = m.finish(t(4.0));
        let values: Vec<f64> = ts.iter().map(|(_, v)| v).collect();
        assert_eq!(values, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn rate_meter_scales_by_window_length() {
        let mut m = RateMeter::new(SimDuration::from_millis(500));
        m.record(t(0.1));
        m.record(t(0.2));
        let ts = m.finish(t(0.5));
        assert_eq!(ts.as_slice()[0].1, 4.0); // 2 events / 0.5 s
    }
}
