//! Fixed-width binned histogram for latency/throughput distributions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Fixed-width histogram over `[low, high)` with overflow/underflow buckets.
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
/// h.record(0.5);
/// h.record(9.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.bin_count(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

/// Error constructing a [`Histogram`] with invalid bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidHistogramBounds;

impl fmt::Display for InvalidHistogramBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "histogram bounds must be finite, low < high, bins > 0")
    }
}

impl std::error::Error for InvalidHistogramBounds {}

/// Error merging two [`Histogram`]s with different binning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinningMismatch;

impl fmt::Display for BinningMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "histograms must share bounds and bin count to merge")
    }
}

impl std::error::Error for BinningMismatch {}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets spanning
    /// `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidHistogramBounds`] if bounds are non-finite,
    /// `low >= high`, or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, InvalidHistogramBounds> {
        if !low.is_finite() || !high.is_finite() || low >= high || bins == 0 {
            return Err(InvalidHistogramBounds);
        }
        Ok(Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        })
    }

    /// Records one observation (NaN is ignored).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += x;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (including out-of-range values).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations below `low`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `high`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of in-range buckets.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_bins()`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The `[start, end)` range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_bins()`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let width = (self.high - self.low) / self.bins.len() as f64;
        (
            self.low + i as f64 * width,
            self.low + (i + 1) as f64 * width,
        )
    }

    /// Iterator over `(bin_midpoint, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let (a, b) = self.bin_range(i);
            ((a + b) / 2.0, self.bins[i])
        })
    }

    /// Approximate `q`-quantile from bin midpoints (in-range mass only);
    /// `None` if no in-range observations.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for i in 0..self.bins.len() {
            cum += self.bins[i];
            if cum >= target {
                let (a, b) = self.bin_range(i);
                return Some((a + b) / 2.0);
            }
        }
        let (a, b) = self.bin_range(self.bins.len() - 1);
        Some((a + b) / 2.0)
    }

    /// Folds `other`'s counts into `self` — the result is exactly the
    /// histogram that would have recorded both observation streams (bucket
    /// counts are integers, so merging is associative and commutative).
    ///
    /// # Errors
    ///
    /// Returns [`BinningMismatch`] unless both histograms share `low`,
    /// `high`, and the bin count; nothing is modified on error.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), BinningMismatch> {
        if self.low != other.low || self.high != other.high || self.bins.len() != other.bins.len() {
            return Err(BinningMismatch);
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        Ok(())
    }

    /// Resets all counts while keeping the binning.
    pub fn clear(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.underflow = 0;
        self.overflow = 0;
        self.count = 0;
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_bounds() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        for i in 0..100 {
            h.record(i as f64);
        }
        for b in 0..10 {
            assert_eq!(h.bin_count(b), 10, "bin {b}");
        }
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.mean(), 49.5);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-0.5);
        h.record(1.0); // boundary belongs to overflow (range is half-open)
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_from_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..100 {
            h.record((i % 10) as f64 + 0.5);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - 4.5).abs() <= 1.0, "median {q50}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.5);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn bin_range_and_iter_are_consistent() {
        let h = Histogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(h.bin_range(0), (0.0, 1.0));
        assert_eq!(h.bin_range(3), (3.0, 4.0));
        let mids: Vec<f64> = h.iter().map(|(m, _)| m).collect();
        assert_eq!(mids, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn clear_resets_counts_only() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(3.0);
        h.record(20.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.num_bins(), 5);
    }
}
