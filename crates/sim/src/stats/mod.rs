//! Online statistics for simulation measurement.
//!
//! Everything here is allocation-light and incremental so monitors can run
//! inside the event loop: [`OnlineStats`] (Welford mean/variance),
//! [`SampleQuantiles`] / [`P2Quantile`] (exact and streaming percentiles),
//! [`Histogram`] (binned distributions), and the time-indexed recorders
//! [`TimeSeries`], [`StepGauge`], and [`RateMeter`].

mod histogram;
mod quantile;
mod replication;
mod timeseries;
mod welford;

pub use histogram::{BinningMismatch, Histogram, InvalidHistogramBounds};
pub use quantile::{P2Quantile, SampleQuantiles};
pub use replication::{t_critical_95, Replications};
pub use timeseries::{RateMeter, StepGauge, TimeSeries};
pub use welford::OnlineStats;
