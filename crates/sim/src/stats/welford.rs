//! Numerically stable online mean/variance (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Streaming summary of a sequence of `f64` observations.
///
/// # Examples
///
/// ```
/// use dcm_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty summary.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by n); `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by n−1); `0.0` with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let s: OnlineStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_stream() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let (a, b) = data.split_at(137);
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        let full: OnlineStats = data.iter().copied().collect();
        assert_eq!(left.count(), full.count());
        assert!((left.mean() - full.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - full.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), full.min());
        assert_eq!(left.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
