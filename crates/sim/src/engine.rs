//! The discrete-event simulation engine.
//!
//! [`Engine`] owns the virtual clock and a priority queue of scheduled
//! actions. Actions are closures over a user-supplied *world* type `W` (the
//! mutable simulation state), which keeps this crate independent of what is
//! being simulated. Ties in time are broken by schedule order, so a run is a
//! pure function of (initial world, seed, schedule), which the reproduction
//! experiments rely on.
//!
//! Cancellation uses generation-stamped slots rather than a hash set: each
//! [`EventId`] packs a slot index and the generation the slot had when the
//! event was scheduled. Cancelling (or executing) an event bumps the slot's
//! generation, so stale heap entries are recognised by a single array
//! compare on pop — no hashing anywhere on the hot path.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::time::{SimDuration, SimTime};

/// Events executed across all engines in this process, accumulated when each
/// engine drops. Powers the events/second figures reported by `repro`.
static TOTAL_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Total events executed by all dropped engines since process start (or the
/// last [`reset_total_executed`]). Monotonic and thread-safe; an engine's
/// count is added when it is dropped, so long-lived engines are not included
/// until they finish.
pub fn total_executed() -> u64 {
    TOTAL_EXECUTED.load(AtomicOrdering::Relaxed)
}

/// Resets the process-wide executed-event counter and returns the value it
/// held, so callers can bracket a measurement window.
pub fn reset_total_executed() -> u64 {
    TOTAL_EXECUTED.swap(0, AtomicOrdering::Relaxed)
}

/// Opaque handle to a scheduled event, usable for cancellation (timeouts,
/// superseded retries). Packs `(generation << 32) | slot`; a handle is only
/// valid while its slot still carries the same generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> Self {
        EventId(u64::from(gen) << 32 | u64::from(slot))
    }

    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// An action scheduled to run against the world at a point in virtual time.
type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: SimTime,
    /// Monotonic schedule order; FIFO tie-break among same-time events.
    seq: u64,
    slot: u32,
    gen: u32,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` rises monotonically, giving FIFO order among ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event engine over a world type `W`.
///
/// # Examples
///
/// ```
/// use dcm_sim::engine::Engine;
/// use dcm_sim::time::{SimDuration, SimTime};
///
/// let mut world = 0u32; // the "world" can be any state
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(5), |w: &mut u32, _e| *w += 1);
/// engine.schedule_in(SimDuration::from_secs(1), |w: &mut u32, e| {
///     *w += 10;
///     // events may schedule further events
///     e.schedule_in(SimDuration::from_secs(1), |w: &mut u32, _e| *w += 100);
/// });
/// engine.run(&mut world);
/// assert_eq!(world, 111);
/// assert_eq!(engine.now(), SimTime::from_secs(5));
/// ```
pub struct Engine<W> {
    now: SimTime,
    heap: BinaryHeap<Scheduled<W>>,
    /// Current generation per slot. An id is live iff `slots[id.slot] ==
    /// id.gen`; cancel and execute both bump the generation.
    slots: Vec<u32>,
    /// Slots whose latest generation has been retired, ready for reuse.
    free: Vec<u32>,
    next_seq: u64,
    /// Live (scheduled, not yet executed or cancelled) events.
    live: usize,
    executed: u64,
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Drop for Engine<W> {
    fn drop(&mut self) {
        if self.executed > 0 {
            TOTAL_EXECUTED.fetch_add(self.executed, AtomicOrdering::Relaxed);
        }
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] and no events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            executed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of live pending events (cancelled events are excluded even if
    /// their heap entries have not been popped yet).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// An event scheduled at or before the current time still executes (next,
    /// in FIFO order among same-time events); the clock never runs backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 live events");
                self.slots.push(0);
                slot
            }
        };
        let gen = self.slots[slot as usize];
        self.live += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            slot,
            gen,
            action: Box::new(action),
        });
        EventId::new(slot, gen)
    }

    /// Schedules `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` to run as the next same-time event.
    pub fn schedule_now(
        &mut self,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancels a pending event in O(1). Returns `true` if the event had not
    /// yet run or been cancelled. The heap entry becomes a tombstone and is
    /// discarded whenever it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot() as usize;
        if slot >= self.slots.len() || self.slots[slot] != id.gen() {
            return false;
        }
        self.retire(id.slot());
        self.live -= 1;
        true
    }

    /// Bumps a slot's generation (invalidating outstanding ids and heap
    /// entries stamped with the old one) and queues it for reuse.
    #[inline]
    fn retire(&mut self, slot: u32) {
        self.slots[slot as usize] = self.slots[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    /// Whether a heap entry still refers to the generation it was scheduled
    /// under (i.e. has not been cancelled or superseded).
    #[inline]
    fn is_current(&self, ev: &Scheduled<W>) -> bool {
        self.slots[ev.slot as usize] == ev.gen
    }

    /// Executes the next event, advancing the clock. Returns `false` when no
    /// events remain.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.heap.pop() else {
                return false;
            };
            if !self.is_current(&ev) {
                continue; // cancelled tombstone
            }
            self.retire(ev.slot);
            self.live -= 1;
            debug_assert!(ev.at >= self.now, "event scheduled in the past");
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
            return true;
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are executed. Pending later events remain queued and the
    /// clock is left at `deadline` (or at the last event if the queue
    /// drained early).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// The timestamp of the next live event, if any. Discards cancelled
    /// tombstones encountered at the top of the heap.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.is_current(ev) {
                return Some(ev.at);
            }
            self.heap.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type W = Vec<u32>;

    fn push_at(engine: &mut Engine<W>, t: u64, tag: u32) -> EventId {
        engine.schedule_at(SimTime::from_secs(t), move |w: &mut W, _| w.push(tag))
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        push_at(&mut e, 3, 3);
        push_at(&mut e, 1, 1);
        push_at(&mut e, 2, 2);
        e.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(e.executed(), 3);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        for tag in 0..10 {
            push_at(&mut e, 5, tag);
        }
        e.run(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_in(SimDuration::from_secs(1), |w: &mut W, e| {
            w.push(1);
            e.schedule_in(SimDuration::from_secs(1), |w: &mut W, _| w.push(2));
        });
        e.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn cancellation_suppresses_execution() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let keep = push_at(&mut e, 1, 1);
        let drop_ = push_at(&mut e, 2, 2);
        push_at(&mut e, 3, 3);
        assert!(e.cancel(drop_));
        assert!(!e.cancel(drop_), "double-cancel reports false");
        assert!(!e.cancel(EventId(999)), "unknown id reports false");
        e.run(&mut w);
        assert_eq!(w, vec![1, 3]);
        let _ = keep;
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        push_at(&mut e, 1, 1);
        push_at(&mut e, 5, 5);
        push_at(&mut e, 10, 10);
        e.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(w, vec![1, 5]);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pending(), 1);
        // Idle gap: deadline beyond all events still advances the clock.
        e.run_until(&mut w, SimTime::from_secs(20));
        assert_eq!(w, vec![1, 5, 10]);
        assert_eq!(e.now(), SimTime::from_secs(20));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(5), |w: &mut W, e| {
            w.push(1);
            // "Past" event executes at now, not before.
            e.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.push(2));
        });
        e.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut e: Engine<W> = Engine::new();
        let a = push_at(&mut e, 1, 1);
        push_at(&mut e, 2, 2);
        e.cancel(a);
        assert_eq!(e.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn empty_engine_steps_false() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        assert!(!e.step(&mut w));
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn schedule_now_runs_before_later_events() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), |w: &mut W, e| {
            w.push(1);
            e.schedule_now(|w: &mut W, _| w.push(2));
            e.schedule_in(SimDuration::from_nanos(1), |w: &mut W, _| w.push(3));
        });
        push_at(&mut e, 2, 4);
        e.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reused_slot_does_not_resurrect_old_handle() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let a = push_at(&mut e, 1, 1);
        assert!(e.cancel(a));
        // The freed slot is reused with a bumped generation; the stale
        // handle must not cancel the new event.
        let b = push_at(&mut e, 2, 2);
        assert!(!e.cancel(a), "stale handle must stay dead");
        assert_eq!(e.pending(), 1);
        e.run(&mut w);
        assert_eq!(w, vec![2]);
        let _ = b;
    }

    #[test]
    fn cancel_after_execution_reports_false() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let a = push_at(&mut e, 1, 1);
        e.run(&mut w);
        assert!(!e.cancel(a), "executed event cannot be cancelled");
    }

    #[test]
    fn heavy_cancellation_keeps_counts_consistent() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let ids: Vec<EventId> = (0..1000).map(|i| push_at(&mut e, i, i as u32)).collect();
        for id in ids.iter().skip(1).step_by(2) {
            assert!(e.cancel(*id));
        }
        assert_eq!(e.pending(), 500);
        e.run(&mut w);
        assert_eq!(w.len(), 500);
        assert!(w.iter().all(|tag| tag % 2 == 0));
        assert_eq!(e.executed(), 500);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn drop_accumulates_global_executed_counter() {
        let before = total_executed();
        let mut w: W = vec![];
        {
            let mut e = Engine::new();
            push_at(&mut e, 1, 1);
            push_at(&mut e, 2, 2);
            e.run(&mut w);
        }
        assert!(total_executed() >= before + 2);
    }
}
