//! The discrete-event simulation engine.
//!
//! [`Engine`] owns the virtual clock and a priority queue of scheduled
//! actions. Actions are closures over a user-supplied *world* type `W` (the
//! mutable simulation state), which keeps this crate independent of what is
//! being simulated. Ties in time are broken by schedule order, so a run is a
//! pure function of (initial world, seed, schedule), which the reproduction
//! experiments rely on.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Opaque handle to a scheduled event, usable for cancellation (timeouts,
/// superseded retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// An action scheduled to run against the world at a point in virtual time.
type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: SimTime,
    id: EventId,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, id) pops
        // first. `id` rises monotonically, giving FIFO order among ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Discrete-event engine over a world type `W`.
///
/// # Examples
///
/// ```
/// use dcm_sim::engine::Engine;
/// use dcm_sim::time::{SimDuration, SimTime};
///
/// let mut world = 0u32; // the "world" can be any state
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(5), |w: &mut u32, _e| *w += 1);
/// engine.schedule_in(SimDuration::from_secs(1), |w: &mut u32, e| {
///     *w += 10;
///     // events may schedule further events
///     e.schedule_in(SimDuration::from_secs(1), |w: &mut u32, _e| *w += 100);
/// });
/// engine.run(&mut world);
/// assert_eq!(world, 111);
/// assert_eq!(engine.now(), SimTime::from_secs(5));
/// ```
pub struct Engine<W> {
    now: SimTime,
    heap: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
    executed: u64,
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] and no events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            executed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones not
    /// yet popped).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// An event scheduled at or before the current time still executes (next,
    /// in FIFO order among same-time events); the clock never runs backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Scheduled {
            at,
            id,
            action: Box::new(action),
        });
        id
    }

    /// Schedules `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` to run as the next same-time event.
    pub fn schedule_now(
        &mut self,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet run
    /// or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // Tombstone; the heap entry is skipped when popped.
        self.cancelled.insert(id)
    }

    /// Executes the next event, advancing the clock. Returns `false` when no
    /// events remain.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.heap.pop() else {
                return false;
            };
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event scheduled in the past");
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
            return true;
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are executed. Pending later events remain queued and the
    /// clock is left at `deadline` (or at the last event if the queue
    /// drained early).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// The timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.id) {
                let ev = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&ev.id);
                continue;
            }
            return Some(ev.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type W = Vec<u32>;

    fn push_at(engine: &mut Engine<W>, t: u64, tag: u32) -> EventId {
        engine.schedule_at(SimTime::from_secs(t), move |w: &mut W, _| w.push(tag))
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        push_at(&mut e, 3, 3);
        push_at(&mut e, 1, 1);
        push_at(&mut e, 2, 2);
        e.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(e.executed(), 3);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        for tag in 0..10 {
            push_at(&mut e, 5, tag);
        }
        e.run(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_in(SimDuration::from_secs(1), |w: &mut W, e| {
            w.push(1);
            e.schedule_in(SimDuration::from_secs(1), |w: &mut W, _| w.push(2));
        });
        e.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn cancellation_suppresses_execution() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let keep = push_at(&mut e, 1, 1);
        let drop_ = push_at(&mut e, 2, 2);
        push_at(&mut e, 3, 3);
        assert!(e.cancel(drop_));
        assert!(!e.cancel(drop_), "double-cancel reports false");
        assert!(!e.cancel(EventId(999)), "unknown id reports false");
        e.run(&mut w);
        assert_eq!(w, vec![1, 3]);
        let _ = keep;
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        push_at(&mut e, 1, 1);
        push_at(&mut e, 5, 5);
        push_at(&mut e, 10, 10);
        e.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(w, vec![1, 5]);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pending(), 1);
        // Idle gap: deadline beyond all events still advances the clock.
        e.run_until(&mut w, SimTime::from_secs(20));
        assert_eq!(w, vec![1, 5, 10]);
        assert_eq!(e.now(), SimTime::from_secs(20));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(5), |w: &mut W, e| {
            w.push(1);
            // "Past" event executes at now, not before.
            e.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.push(2));
        });
        e.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut e: Engine<W> = Engine::new();
        let a = push_at(&mut e, 1, 1);
        push_at(&mut e, 2, 2);
        e.cancel(a);
        assert_eq!(e.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn empty_engine_steps_false() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        assert!(!e.step(&mut w));
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn schedule_now_runs_before_later_events() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), |w: &mut W, e| {
            w.push(1);
            e.schedule_now(|w: &mut W, _| w.push(2));
            e.schedule_in(SimDuration::from_nanos(1), |w: &mut W, _| w.push(3));
        });
        push_at(&mut e, 2, 4);
        e.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4]);
    }
}
