//! The discrete-event simulation engine.
//!
//! [`Engine`] owns the virtual clock and a priority queue of scheduled
//! actions. Actions are closures over a user-supplied *world* type `W` (the
//! mutable simulation state), which keeps this crate independent of what is
//! being simulated. Ties in time are broken by schedule order, so a run is a
//! pure function of (initial world, seed, schedule), which the reproduction
//! experiments rely on.
//!
//! Cancellation uses generation-stamped slots rather than a hash set: each
//! [`EventId`] packs a slot index and the generation the slot had when the
//! event was scheduled. Cancelling (or executing) an event bumps the slot's
//! generation, so stale queue entries are recognised by a single array
//! compare on pop — no hashing anywhere on the hot path.
//!
//! # Calendar queue
//!
//! The pending-event set is a calendar (bucketed) queue rather than a single
//! binary heap, so that `schedule`/`pop` stay O(1) amortized at fleet scale
//! (millions of pending timers) instead of O(log n):
//!
//! * **Ring**: a power-of-two array of buckets, each covering `2^shift`
//!   nanoseconds of virtual time. An event lands in bucket
//!   `(at >> shift) mod ring_len`; the ring covers the window of bucket
//!   indices `(active_idx, active_idx + ring_len)`.
//! * **Active heap**: all events whose bucket index is `<= active_idx` sit in
//!   one small binary heap, ordered by exact `(time, seq)`. Pops come only
//!   from this heap. When it drains, the cursor advances bucket by bucket,
//!   spilling each ring bucket it passes into the heap.
//! * **Far list**: events beyond the ring window wait in an unsorted overflow
//!   list and are redistributed when the window slides into their range (or
//!   wholesale when the ring drains).
//!
//! The structure periodically rebuilds — growing/shrinking the ring with the
//! live count and re-deriving `shift` from the observed event-time span — so
//! bucket occupancy stays O(1) as densities change.
//!
//! **Determinism argument.** Pop order is *exactly* global `(time, seq)`
//! order, bit-identical to the previous single binary heap: every event in
//! the active heap has bucket index `<= active_idx`, hence timestamp
//! `< (active_idx + 1) << shift`; every event in the ring or far list has
//! bucket index `> active_idx`, hence a timestamp at or past that boundary.
//! The minimum of the active heap is therefore the global minimum, and the
//! heap itself breaks ties by the monotonic schedule sequence. Bucket width,
//! ring size, rebuild timing, and spill order affect only *where* an event
//! waits, never *when* it pops, so committed artifacts are invariant under
//! all calendar tuning.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::time::{SimDuration, SimTime};

/// Events executed across all engines in this process, accumulated when each
/// engine drops. Powers the events/second figures reported by `repro`.
static TOTAL_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Total events executed by all dropped engines since process start (or the
/// last [`reset_total_executed`]). Monotonic and thread-safe; an engine's
/// count is added when it is dropped, so long-lived engines are not included
/// until they finish.
pub fn total_executed() -> u64 {
    TOTAL_EXECUTED.load(AtomicOrdering::Relaxed)
}

/// Resets the process-wide executed-event counter and returns the value it
/// held, so callers can bracket a measurement window.
pub fn reset_total_executed() -> u64 {
    TOTAL_EXECUTED.swap(0, AtomicOrdering::Relaxed)
}

/// Opaque handle to a scheduled event, usable for cancellation (timeouts,
/// superseded retries). Packs `(generation << 32) | slot`; a handle is only
/// valid while its slot still carries the same generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> Self {
        EventId(u64::from(gen) << 32 | u64::from(slot))
    }

    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// An action scheduled to run against the world at a point in virtual time.
type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: SimTime,
    /// Monotonic schedule order; FIFO tie-break among same-time events.
    seq: u64,
    slot: u32,
    gen: u32,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` rises monotonically, giving FIFO order among ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Smallest ring size; also the initial size.
const MIN_BUCKETS: usize = 64;
/// Largest ring size (2^20 buckets ≈ 24 MB of `Vec` headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Largest bucket width exponent: 2^40 ns ≈ 18 minutes per bucket.
const MAX_SHIFT: u32 = 40;
/// Initial bucket width exponent: 2^20 ns ≈ 1 ms per bucket.
const INITIAL_SHIFT: u32 = 20;

/// The calendar queue described in the module docs. Stores [`Scheduled`]
/// entries (including tombstones for cancelled events — the [`Engine`]
/// filters those by generation on pop, exactly as with the old heap).
struct Calendar<W> {
    /// Events with bucket index `<= active_idx`; the only pop source.
    active: BinaryHeap<Scheduled<W>>,
    /// Buckets for the window `(active_idx, active_idx + ring.len())`.
    ring: Vec<Vec<Scheduled<W>>>,
    /// Entries currently stored across all ring buckets.
    ring_count: usize,
    /// Global bucket index (`at >> shift`) of the active window's edge.
    active_idx: u64,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Events beyond the ring window, unsorted.
    far: Vec<Scheduled<W>>,
    /// Minimum timestamp (nanos) in `far`; `u64::MAX` when `far` is empty.
    far_min: u64,
    /// Total stored entries (including tombstones).
    entries: usize,
    /// Push/pop operations since the last rebuild; amortizes rebuild cost.
    ops_since_rebuild: usize,
}

impl<W> Calendar<W> {
    fn new() -> Self {
        Calendar {
            active: BinaryHeap::new(),
            ring: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            ring_count: 0,
            active_idx: 0,
            shift: INITIAL_SHIFT,
            far: Vec::new(),
            far_min: u64::MAX,
            entries: 0,
            ops_since_rebuild: 0,
        }
    }

    /// True when `ev` was cancelled (or already executed): its slot's
    /// current generation no longer matches. Dead entries are dropped
    /// whenever a structural operation touches them, so cancel-heavy
    /// workloads (timeout churn) cannot accumulate tombstones.
    #[inline]
    fn dead(ev: &Scheduled<W>, slots: &[u32]) -> bool {
        slots[ev.slot as usize] != ev.gen
    }

    /// Files an entry into active heap, ring, or far list by bucket index.
    /// Placement never affects pop order (see module docs), only cost.
    fn place(&mut self, ev: Scheduled<W>) {
        let b = ev.at.as_nanos() >> self.shift;
        if b <= self.active_idx {
            self.active.push(ev);
        } else if b < self.active_idx.saturating_add(self.ring.len() as u64) {
            let idx = (b & (self.ring.len() as u64 - 1)) as usize;
            self.ring[idx].push(ev);
            self.ring_count += 1;
        } else {
            self.far_min = self.far_min.min(ev.at.as_nanos());
            self.far.push(ev);
        }
    }

    fn push(&mut self, ev: Scheduled<W>, slots: &[u32]) {
        self.entries += 1;
        self.ops_since_rebuild += 1;
        self.place(ev);
        let grow = self.entries > self.ring.len() * 4 && self.ring.len() < MAX_BUCKETS;
        let far_heavy = self.far.len() > 64 && self.far.len() * 2 > self.entries;
        if (grow || far_heavy) && self.ops_since_rebuild * 2 >= self.entries {
            self.rebuild(slots);
        }
    }

    fn peek(&mut self, slots: &[u32]) -> Option<&Scheduled<W>> {
        self.ensure_active(slots);
        self.active.peek()
    }

    fn pop(&mut self, slots: &[u32]) -> Option<Scheduled<W>> {
        self.ensure_active(slots);
        let ev = self.active.pop()?;
        self.entries -= 1;
        self.ops_since_rebuild += 1;
        if self.entries * 8 < self.ring.len()
            && self.ring.len() > MIN_BUCKETS
            && self.ops_since_rebuild * 2 >= self.entries
        {
            self.rebuild(slots);
        }
        Some(ev)
    }

    /// Refills the active heap from the ring/far list until it holds the
    /// global minimum (or the queue is confirmed empty).
    fn ensure_active(&mut self, slots: &[u32]) {
        while self.active.is_empty() {
            if self.ring_count == 0 {
                if self.far.is_empty() {
                    return;
                }
                self.retarget_far(slots);
                continue;
            }
            // Far events the sliding window is about to pass must re-enter
            // the ring before the cursor crosses their bucket.
            if self.far_due() {
                self.redistribute_far(slots);
                continue;
            }
            let mask = self.ring.len() as u64 - 1;
            loop {
                self.active_idx += 1;
                let idx = (self.active_idx & mask) as usize;
                if !self.ring[idx].is_empty() {
                    self.ring_count -= self.ring[idx].len();
                    while let Some(ev) = self.ring[idx].pop() {
                        if Self::dead(&ev, slots) {
                            self.entries -= 1;
                            continue;
                        }
                        self.active.push(ev);
                    }
                    if !self.active.is_empty() {
                        break;
                    }
                    // The bucket held only tombstones. Re-run the outer
                    // checks if the ring drained or far events became due
                    // (the cursor must never advance past the far
                    // minimum's bucket); otherwise keep advancing.
                    if self.ring_count == 0 || self.far_due() {
                        break;
                    }
                    continue;
                }
                if self.far_due() {
                    break; // handled at the top of the outer loop
                }
            }
        }
    }

    /// True when the far list's earliest event falls inside (or at the edge
    /// of) the bucket the cursor would advance to next.
    #[inline]
    fn far_due(&self) -> bool {
        !self.far.is_empty() && (self.far_min >> self.shift) <= self.active_idx.saturating_add(1)
    }

    /// Re-files every far event under the current geometry, dropping dead
    /// entries.
    fn redistribute_far(&mut self, slots: &[u32]) {
        let far = std::mem::take(&mut self.far);
        self.far_min = u64::MAX;
        for ev in far {
            if Self::dead(&ev, slots) {
                self.entries -= 1;
                continue;
            }
            self.place(ev);
        }
    }

    /// Ring and active are empty: jump the window to the far minimum,
    /// re-deriving the bucket width from the far population's density.
    fn retarget_far(&mut self, slots: &[u32]) {
        debug_assert!(self.active.is_empty() && self.ring_count == 0);
        self.shift = tuned_shift(self.far.iter().map(|ev| ev.at.as_nanos()), self.ring.len());
        self.active_idx = self.far_min >> self.shift;
        self.redistribute_far(slots);
        self.ops_since_rebuild = 0;
    }

    /// Full rebuild: resize the ring to the live population, re-derive the
    /// bucket width, and re-file everything outside the active heap. The
    /// active heap keeps its contents — the new window edge is chosen so its
    /// invariant (`active` holds the global minimum) still holds.
    fn rebuild(&mut self, slots: &[u32]) {
        // Timestamp boundary below which every current active-heap entry
        // lies; computed under the *old* geometry before retuning.
        let boundary = (u128::from(self.active_idx) + 1) << self.shift;
        let boundary = u64::try_from(boundary).unwrap_or(u64::MAX);

        // Dead entries are dropped rather than moved: a rebuild visits
        // every stored entry anyway, so cancelled events cost nothing
        // beyond the rebuild that finally discards them.
        let mut moved: Vec<Scheduled<W>> = Vec::with_capacity(self.ring_count + self.far.len());
        for bucket in &mut self.ring {
            for ev in bucket.drain(..) {
                if Self::dead(&ev, slots) {
                    self.entries -= 1;
                    continue;
                }
                moved.push(ev);
            }
        }
        for ev in self.far.drain(..) {
            if Self::dead(&ev, slots) {
                self.entries -= 1;
                continue;
            }
            moved.push(ev);
        }
        self.ring_count = 0;
        self.far_min = u64::MAX;

        let mut len = self.ring.len();
        while self.entries > len * 4 && len < MAX_BUCKETS {
            len *= 2;
        }
        while self.entries * 8 < len && len > MIN_BUCKETS {
            len /= 2;
        }
        if len != self.ring.len() {
            self.ring = (0..len).map(|_| Vec::new()).collect();
        }

        self.shift = tuned_shift(moved.iter().map(|ev| ev.at.as_nanos()), len);
        // Every moved event has `at >= boundary` (it had bucket index
        // `> active_idx` under the old geometry), so an edge at the bucket
        // of `boundary - 1` keeps all of them at or past the window edge.
        self.active_idx = boundary.saturating_sub(1) >> self.shift;
        for ev in moved {
            self.place(ev);
        }
        self.ops_since_rebuild = 0;
    }
}

/// Picks a bucket-width exponent so the given timestamps spread over roughly
/// one event per bucket, capped at half the ring. A distant outlier inflates
/// the width (degrading gracefully toward one big bucket — i.e. the plain
/// heap) rather than ever affecting pop order.
fn tuned_shift(times: impl Iterator<Item = u64>, ring_len: usize) -> u32 {
    let (mut n, mut min, mut max) = (0u64, u64::MAX, 0u64);
    for t in times {
        n += 1;
        min = min.min(t);
        max = max.max(t);
    }
    if n == 0 {
        return INITIAL_SHIFT;
    }
    let spread = n.min(ring_len as u64 / 2).max(1);
    let width = ((max - min) / spread).max(1);
    (63 - width.leading_zeros()).min(MAX_SHIFT)
}

/// Discrete-event engine over a world type `W`.
///
/// # Examples
///
/// ```
/// use dcm_sim::engine::Engine;
/// use dcm_sim::time::{SimDuration, SimTime};
///
/// let mut world = 0u32; // the "world" can be any state
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(5), |w: &mut u32, _e| *w += 1);
/// engine.schedule_in(SimDuration::from_secs(1), |w: &mut u32, e| {
///     *w += 10;
///     // events may schedule further events
///     e.schedule_in(SimDuration::from_secs(1), |w: &mut u32, _e| *w += 100);
/// });
/// engine.run(&mut world);
/// assert_eq!(world, 111);
/// assert_eq!(engine.now(), SimTime::from_secs(5));
/// ```
pub struct Engine<W> {
    now: SimTime,
    queue: Calendar<W>,
    /// Current generation per slot. An id is live iff `slots[id.slot] ==
    /// id.gen`; cancel and execute both bump the generation.
    slots: Vec<u32>,
    /// Slots whose latest generation has been retired, ready for reuse.
    free: Vec<u32>,
    next_seq: u64,
    /// Live (scheduled, not yet executed or cancelled) events.
    live: usize,
    executed: u64,
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Drop for Engine<W> {
    fn drop(&mut self) {
        if self.executed > 0 {
            TOTAL_EXECUTED.fetch_add(self.executed, AtomicOrdering::Relaxed);
        }
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] and no events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: Calendar::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            executed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of live pending events (cancelled events are excluded even if
    /// their queue entries have not been popped yet).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// An event scheduled at or before the current time still executes (next,
    /// in FIFO order among same-time events); the clock never runs backwards.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 live events");
                self.slots.push(0);
                slot
            }
        };
        let gen = self.slots[slot as usize];
        self.live += 1;
        self.queue.push(
            Scheduled {
                at,
                seq,
                slot,
                gen,
                action: Box::new(action),
            },
            &self.slots,
        );
        EventId::new(slot, gen)
    }

    /// Schedules `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` to run as the next same-time event.
    pub fn schedule_now(
        &mut self,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now, action)
    }

    /// Cancels a pending event in O(1). Returns `true` if the event had not
    /// yet run or been cancelled. The queue entry becomes a tombstone and is
    /// discarded whenever it surfaces.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = id.slot() as usize;
        if slot >= self.slots.len() || self.slots[slot] != id.gen() {
            return false;
        }
        self.retire(id.slot());
        self.live -= 1;
        true
    }

    /// Bumps a slot's generation (invalidating outstanding ids and queue
    /// entries stamped with the old one) and queues it for reuse.
    #[inline]
    fn retire(&mut self, slot: u32) {
        self.slots[slot as usize] = self.slots[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    /// Executes the next event, advancing the clock. Returns `false` when no
    /// events remain.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.queue.pop(&self.slots) else {
                return false;
            };
            if self.slots[ev.slot as usize] != ev.gen {
                continue; // cancelled tombstone
            }
            self.retire(ev.slot);
            self.live -= 1;
            // Release-mode guard for the calendar's ordering contract: a
            // cursor advance past a not-yet-redistributed far minimum (the
            // all-tombstone-bucket purge path) would surface here as a pop
            // that travels backwards in time. One u64 compare per event —
            // cheap enough to keep on in release, where a silent reorder
            // would otherwise corrupt the simulation undetected.
            assert!(
                ev.at >= self.now,
                "event queue ordering violated: popped t={:?} while clock at t={:?}",
                ev.at,
                self.now
            );
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
            return true;
        }
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs until the clock would pass `deadline`; events at exactly
    /// `deadline` are executed. Pending later events remain queued and the
    /// clock is left at `deadline` (or at the last event if the queue
    /// drained early).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// The timestamp of the next live event, if any. Discards cancelled
    /// tombstones encountered at the front of the queue.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.queue.peek(&self.slots) {
                None => return None,
                Some(ev) if self.slots[ev.slot as usize] == ev.gen => return Some(ev.at),
                Some(_) => {
                    self.queue.pop(&self.slots);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    type W = Vec<u32>;

    fn push_at(engine: &mut Engine<W>, t: u64, tag: u32) -> EventId {
        engine.schedule_at(SimTime::from_secs(t), move |w: &mut W, _| w.push(tag))
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        push_at(&mut e, 3, 3);
        push_at(&mut e, 1, 1);
        push_at(&mut e, 2, 2);
        e.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(e.executed(), 3);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        for tag in 0..10 {
            push_at(&mut e, 5, tag);
        }
        e.run(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_in(SimDuration::from_secs(1), |w: &mut W, e| {
            w.push(1);
            e.schedule_in(SimDuration::from_secs(1), |w: &mut W, _| w.push(2));
        });
        e.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn cancellation_suppresses_execution() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let keep = push_at(&mut e, 1, 1);
        let drop_ = push_at(&mut e, 2, 2);
        push_at(&mut e, 3, 3);
        assert!(e.cancel(drop_));
        assert!(!e.cancel(drop_), "double-cancel reports false");
        assert!(!e.cancel(EventId(999)), "unknown id reports false");
        e.run(&mut w);
        assert_eq!(w, vec![1, 3]);
        let _ = keep;
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        push_at(&mut e, 1, 1);
        push_at(&mut e, 5, 5);
        push_at(&mut e, 10, 10);
        e.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(w, vec![1, 5]);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pending(), 1);
        // Idle gap: deadline beyond all events still advances the clock.
        e.run_until(&mut w, SimTime::from_secs(20));
        assert_eq!(w, vec![1, 5, 10]);
        assert_eq!(e.now(), SimTime::from_secs(20));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(5), |w: &mut W, e| {
            w.push(1);
            // "Past" event executes at now, not before.
            e.schedule_at(SimTime::from_secs(1), |w: &mut W, _| w.push(2));
        });
        e.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut e: Engine<W> = Engine::new();
        let a = push_at(&mut e, 1, 1);
        push_at(&mut e, 2, 2);
        e.cancel(a);
        assert_eq!(e.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn empty_engine_steps_false() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        assert!(!e.step(&mut w));
        assert_eq!(e.peek_time(), None);
    }

    #[test]
    fn schedule_now_runs_before_later_events() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), |w: &mut W, e| {
            w.push(1);
            e.schedule_now(|w: &mut W, _| w.push(2));
            e.schedule_in(SimDuration::from_nanos(1), |w: &mut W, _| w.push(3));
        });
        push_at(&mut e, 2, 4);
        e.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reused_slot_does_not_resurrect_old_handle() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let a = push_at(&mut e, 1, 1);
        assert!(e.cancel(a));
        // The freed slot is reused with a bumped generation; the stale
        // handle must not cancel the new event.
        let b = push_at(&mut e, 2, 2);
        assert!(!e.cancel(a), "stale handle must stay dead");
        assert_eq!(e.pending(), 1);
        e.run(&mut w);
        assert_eq!(w, vec![2]);
        let _ = b;
    }

    #[test]
    fn cancel_after_execution_reports_false() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let a = push_at(&mut e, 1, 1);
        e.run(&mut w);
        assert!(!e.cancel(a), "executed event cannot be cancelled");
    }

    #[test]
    fn heavy_cancellation_keeps_counts_consistent() {
        let mut w: W = vec![];
        let mut e = Engine::new();
        let ids: Vec<EventId> = (0..1000).map(|i| push_at(&mut e, i, i as u32)).collect();
        for id in ids.iter().skip(1).step_by(2) {
            assert!(e.cancel(*id));
        }
        assert_eq!(e.pending(), 500);
        e.run(&mut w);
        assert_eq!(w.len(), 500);
        assert!(w.iter().all(|tag| tag % 2 == 0));
        assert_eq!(e.executed(), 500);
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn drop_accumulates_global_executed_counter() {
        let before = total_executed();
        let mut w: W = vec![];
        {
            let mut e = Engine::new();
            push_at(&mut e, 1, 1);
            push_at(&mut e, 2, 2);
            e.run(&mut w);
        }
        assert!(total_executed() >= before + 2);
    }

    #[test]
    fn wide_time_spread_triggers_calendar_retuning() {
        // Mix nanosecond-scale and hour-scale timestamps so pushes land in
        // the far list, rebuilds retune the bucket width, and pops still
        // come out in exact time order.
        let mut w: W = vec![];
        let mut e = Engine::new();
        let mut expect: Vec<(u64, u32)> = vec![];
        let mut sm = SplitMix64::new(7);
        for tag in 0..4000u32 {
            let at = match tag % 4 {
                0 => sm.next_u64() % 1_000,                     // ~ns
                1 => sm.next_u64() % 1_000_000_000,             // ~1s
                2 => 3_600_000_000_000 + sm.next_u64() % 1_000, // ~1h cluster
                _ => sm.next_u64() % 7_200_000_000_000,         // anywhere
            };
            e.schedule_at(SimTime::from_nanos(at), move |w: &mut W, _| w.push(tag));
            expect.push((at, tag));
        }
        expect.sort_by_key(|&(at, tag)| (at, tag)); // seq order == tag order here
        e.run(&mut w);
        assert_eq!(
            w,
            expect.iter().map(|&(_, tag)| tag).collect::<Vec<_>>(),
            "calendar queue must pop in exact (time, seq) order"
        );
    }

    /// Reference-model check: random schedule/cancel/pop interleavings
    /// against a plain `BinaryHeap` + cancelled-set model must pop in
    /// byte-identical `(time, seq)` order, across slot reuse and stale
    /// generations.
    #[test]
    fn random_interleavings_match_binary_heap_reference() {
        use std::cmp::Reverse;
        use std::collections::BTreeSet;

        for seed in 0..12u64 {
            let mut sm = SplitMix64::new(0xCA1E_0000 + seed);
            let mut e: Engine<Vec<u64>> = Engine::new();
            let mut w: Vec<u64> = vec![];
            // Model: (at_nanos, seq, tag) min-heap plus cancelled seq set.
            let mut model: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut cancelled: BTreeSet<u64> = BTreeSet::new();
            let mut live: Vec<(EventId, u64)> = vec![]; // (handle, seq)
            let mut dead: Vec<EventId> = vec![]; // retired handles (stale gens)
            let mut next_seq = 0u64;
            let mut expected: Vec<u64> = vec![];

            for _ in 0..4000 {
                match sm.next_u64() % 100 {
                    // Schedule with a delay mixing zero, dense, and sparse
                    // scales so entries hit active heap, ring, and far list.
                    0..=54 => {
                        let delay = match sm.next_u64() % 5 {
                            0 => 0,
                            1 => sm.next_u64() % 1_000,
                            2 => sm.next_u64() % 1_000_000,
                            3 => sm.next_u64() % 1_000_000_000,
                            _ => sm.next_u64() % 600_000_000_000,
                        };
                        let at = e.now() + SimDuration::from_nanos(delay);
                        let seq = next_seq;
                        next_seq += 1;
                        let id = e.schedule_at(at, move |w: &mut Vec<u64>, _| w.push(seq));
                        model.push(Reverse((at.as_nanos(), seq, seq)));
                        live.push((id, seq));
                    }
                    // Cancel a random live event; both sides forget it.
                    55..=74 if !live.is_empty() => {
                        let i = (sm.next_u64() % live.len() as u64) as usize;
                        let (id, seq) = live.swap_remove(i);
                        assert!(e.cancel(id), "live handle must cancel");
                        cancelled.insert(seq);
                        dead.push(id);
                    }
                    // Stale handles (slot since reused or retired) stay dead.
                    75..=79 if !dead.is_empty() => {
                        let i = (sm.next_u64() % dead.len() as u64) as usize;
                        assert!(!e.cancel(dead[i]), "stale handle must stay dead");
                    }
                    // Pop a few events; record what the model expects.
                    _ => {
                        for _ in 0..=(sm.next_u64() % 3) {
                            let due = loop {
                                match model.pop() {
                                    None => break None,
                                    Some(Reverse((_, seq, tag))) => {
                                        if cancelled.remove(&seq) {
                                            continue;
                                        }
                                        break Some((seq, tag));
                                    }
                                }
                            };
                            match due {
                                None => assert!(!e.step(&mut w)),
                                Some((seq, tag)) => {
                                    assert!(e.step(&mut w));
                                    expected.push(tag);
                                    let i = live.iter().position(|&(_, s)| s == seq).unwrap();
                                    let (id, _) = live.swap_remove(i);
                                    dead.push(id);
                                }
                            }
                        }
                    }
                }
                assert_eq!(e.pending(), live.len(), "live count must track the model");
            }

            // Drain both sides completely.
            while let Some(Reverse((_, seq, tag))) = model.pop() {
                if cancelled.remove(&seq) {
                    continue;
                }
                expected.push(tag);
            }
            e.run(&mut w);
            assert_eq!(
                w, expected,
                "seed {seed}: pop order diverged from reference"
            );
            assert_eq!(e.pending(), 0);
        }
    }
}
