//! Virtual time for the discrete-event simulation.
//!
//! Time is kept as an integer number of nanoseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible across platforms — floating
//! point time would make tie-breaking (and therefore the whole simulation)
//! depend on accumulated rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point on the simulation's virtual timeline, in nanoseconds since the
/// start of the run.
///
/// # Examples
///
/// ```
/// use dcm_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use dcm_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(250) * 4;
/// assert_eq!(d, SimDuration::from_secs(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates a time from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked distance to `other` (`None` if `other > self`).
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by a non-negative factor, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration(secs_to_nanos(self.as_secs_f64() * factor))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        if secs.is_infinite() && secs > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC as f64;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than self"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`SimDuration::saturating_sub`] when the
    /// ordering is uncertain.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_seconds() {
        let t = SimTime::from_secs_f64(12.345_678_9);
        assert!((t.as_secs_f64() - 12.345_678_9).abs() < 1e-9);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
    }

    #[test]
    fn negative_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::from_secs(10);
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
        assert_eq!(t1.saturating_since(t0), SimDuration::from_millis(500));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn scaling_durations() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_millis(250));
        assert_eq!(d * 3, SimDuration::from_secs(3));
        assert_eq!(d / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(15).to_string(), "15.000ms");
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
    }

    #[test]
    fn max_time_is_ordered_after_everything() {
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
