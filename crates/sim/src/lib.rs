//! # dcm-sim — deterministic discrete-event simulation substrate
//!
//! The foundation the DCM reproduction runs on: a virtual clock and event
//! queue ([`engine::Engine`]), reproducible random number generation
//! ([`rng`]), random variate distributions ([`dist`]), and online statistics
//! ([`stats`]).
//!
//! Determinism is the design constraint that shapes everything here: given
//! the same seed and schedule, a simulation run is bit-for-bit identical
//! across machines, which lets the experiment harness assert on *shapes* of
//! results rather than flaky absolute values.
//!
//! ## Example: an M/M/1 queue in a few lines
//!
//! ```
//! use dcm_sim::engine::Engine;
//! use dcm_sim::dist::{Dist, Sample};
//! use dcm_sim::rng::SimRng;
//! use dcm_sim::time::{SimDuration, SimTime};
//!
//! struct World {
//!     rng: SimRng,
//!     arrivals: Dist,
//!     service: Dist,
//!     queue: u32,
//!     served: u32,
//! }
//!
//! fn arrive(w: &mut World, e: &mut Engine<World>) {
//!     w.queue += 1;
//!     if w.queue == 1 {
//!         let s = w.service.sample(&mut w.rng);
//!         e.schedule_in(SimDuration::from_secs_f64(s), depart);
//!     }
//!     let next = w.arrivals.sample(&mut w.rng);
//!     e.schedule_in(SimDuration::from_secs_f64(next), arrive);
//! }
//!
//! fn depart(w: &mut World, e: &mut Engine<World>) {
//!     w.queue -= 1;
//!     w.served += 1;
//!     if w.queue > 0 {
//!         let s = w.service.sample(&mut w.rng);
//!         e.schedule_in(SimDuration::from_secs_f64(s), depart);
//!     }
//! }
//!
//! let mut world = World {
//!     rng: SimRng::seed_from(1),
//!     arrivals: Dist::exponential(10.0),
//!     service: Dist::exponential(20.0),
//!     queue: 0,
//!     served: 0,
//! };
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, arrive);
//! engine.run_until(&mut world, SimTime::from_secs(100));
//! // ~10 arrivals/sec for 100 s, utilization 0.5
//! assert!(world.served > 800 && world.served < 1200);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod engine;
pub mod faults;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod time;

pub use dist::{Dist, Sample};
pub use engine::{Engine, EventId};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultSpec};
pub use rng::{derive_seed, SimRng};
pub use runner::{run_ordered, set_jobs};
pub use time::{SimDuration, SimTime};
