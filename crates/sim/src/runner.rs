//! Parallel, deterministic fan-out of independent simulation runs.
//!
//! Experiment sweeps (one run per user count, per seed, per concurrency
//! level, …) are embarrassingly parallel: each run builds its own world and
//! engine from a descriptor, so runs share no state. [`run_ordered`] executes
//! such a batch on a scoped worker pool and returns the results **in input
//! order**, which makes the parallel path bit-identical to the serial one:
//! tables, CSVs, and aggregate statistics see exactly the same sequence of
//! values regardless of worker count or OS scheduling.
//!
//! The worker count is a process-wide setting ([`set_jobs`]) rather than a
//! per-call argument so that experiment function signatures stay stable and
//! the `--jobs` CLI flag reaches every sweep without threading a parameter
//! through a dozen layers. `0` (the default) means "use
//! [`available_parallelism`]".
//!
//! Panic semantics: a panicking task poisons the whole batch — the panic is
//! propagated to the caller once all workers have stopped, never swallowed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Process-wide worker count. 0 = auto (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count for [`run_ordered`]. `0` restores the
/// default of [`available_parallelism`]. `1` forces the serial path.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Release);
}

/// The configured worker count after resolving `0` to the machine's
/// available parallelism. Always at least 1.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Acquire) {
        0 => available_parallelism(),
        n => n,
    }
}

/// The number of hardware threads the OS reports, falling back to 1 when
/// detection fails (e.g. restricted sandboxes).
pub fn available_parallelism() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `task` over every item, in parallel across [`jobs`] workers, and
/// returns the outputs in input order.
///
/// Each worker claims items off a shared atomic cursor, so load balances
/// even when per-item cost varies wildly (large sweeps mix 2-second and
/// 200-millisecond runs). Items must be independent: `task` receives only
/// the item, builds all per-run state itself, and returns an owned result.
///
/// Determinism: because results are reassembled by input index, the returned
/// `Vec` is identical — element for element — to `items.map(task)` run
/// serially, for any worker count.
///
/// # Examples
///
/// ```
/// use dcm_sim::runner::run_ordered;
///
/// let squares = run_ordered(vec![1u64, 2, 3, 4], |n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_ordered<T, R, F>(items: Vec<T>, task: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_ordered_with(jobs(), items, task)
}

/// [`run_ordered`] with an explicit worker count, bypassing the global
/// setting. Used by the determinism regression tests to compare `1` against
/// `N` directly.
pub fn run_ordered_with<T, R, F>(workers: usize, items: Vec<T>, task: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        // Serial path: same iteration order the parallel path reconstructs.
        return items.into_iter().map(task).collect();
    }

    // Items move to whichever worker claims their index; Option slots let
    // workers take ownership without consuming the Vec.
    let slots: Vec<spin::TakeSlot<T>> = items.into_iter().map(spin::TakeSlot::new).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let results = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let slots = &slots;
            let cursor = &cursor;
            let task = &task;
            handles.push(scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = slots[idx].take().expect("each index claimed once");
                // A send can only fail if the receiver is gone, which means
                // another task panicked; stop quietly and let the scope
                // propagate that panic.
                if tx.send((idx, task(item))).is_err() {
                    break;
                }
            }));
        }
        drop(tx);

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (idx, result) in rx {
            results[idx] = Some(result);
        }
        // Join explicitly so a task panic resurfaces with its original
        // payload instead of the scope's generic message.
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        results
    });
    // A panicking worker re-raises inside thread::scope above, so holes are
    // unreachable here: every index was delivered.
    results
        .into_iter()
        .map(|slot| slot.expect("worker delivered every index"))
        .collect()
}

/// Runs two independent closures in parallel (when jobs allow) and returns
/// both results. Used for pairs like "same scenario under controller A and
/// controller B".
pub fn join<A, B, RA, RB>(fa: A, fb: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if jobs() <= 1 {
        return (fa(), fb());
    }
    thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let ra = fa();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (ra, rb)
    })
}

mod spin {
    //! A one-shot cell a worker can take from through a shared reference.

    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub struct TakeSlot<T> {
        taken: AtomicBool,
        value: UnsafeCell<Option<T>>,
    }

    // Safety: `take` hands the value out at most once (the swap on `taken`
    // guarantees a single winner), so no two threads ever touch the
    // UnsafeCell contents concurrently.
    unsafe impl<T: Send> Sync for TakeSlot<T> {}

    impl<T> TakeSlot<T> {
        pub fn new(value: T) -> Self {
            TakeSlot {
                taken: AtomicBool::new(false),
                value: UnsafeCell::new(Some(value)),
            }
        }

        pub fn take(&self) -> Option<T> {
            if self.taken.swap(true, Ordering::AcqRel) {
                return None;
            }
            // Safety: we won the swap, so we are the only accessor.
            unsafe { (*self.value.get()).take() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_worker_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial = run_ordered_with(1, items.clone(), |n| n * 31 + 7);
        for workers in [2, 3, 4, 8] {
            let parallel = run_ordered_with(workers, items.clone(), |n| n * 31 + 7);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_batches() {
        let empty: Vec<u32> = vec![];
        assert_eq!(run_ordered_with(4, empty, |n| n).len(), 0);
        assert_eq!(run_ordered_with(4, vec![9u32], |n| n + 1), vec![10]);
    }

    #[test]
    fn uneven_task_costs_still_return_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = run_ordered_with(4, items, |n| {
            if n % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            n
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = join(|| 1 + 1, || "two".len());
        assert_eq!(a, 2);
        assert_eq!(b, 3);
    }

    #[test]
    fn set_jobs_round_trips() {
        // Serialize against other tests that might read the global by
        // restoring the default immediately.
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "task failure propagates")]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<u32> = (0..16).collect();
        let _ = run_ordered_with(4, items, |n| {
            if n == 7 {
                panic!("task failure propagates");
            }
            n
        });
    }
}
