//! Deterministic random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a seed, independent of
//! the `rand` crate's internal algorithm choices, so the generator itself
//! (xoshiro256++ seeded via SplitMix64) is implemented here. It plugs into
//! the `rand` ecosystem through [`rand::RngCore`] / [`rand::SeedableRng`].

use rand::{RngCore, SeedableRng};

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state and as a
/// cheap stream-splitting helper.
///
/// # Examples
///
/// ```
/// use dcm_sim::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the simulation's workhorse generator.
///
/// Fast, 256-bit state, passes BigCrush, and — because it lives in this crate
/// — its output sequence is pinned for the lifetime of the project, keeping
/// recorded experiment results reproducible.
///
/// # Examples
///
/// ```
/// use dcm_sim::rng::Xoshiro256PlusPlus;
/// use rand::Rng;
///
/// let mut a = Xoshiro256PlusPlus::seed_from(7);
/// let mut b = Xoshiro256PlusPlus::seed_from(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64
    /// as recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256PlusPlus { s }
    }

    /// Derives an independent child stream (for e.g. one stream per server),
    /// leaving `self`'s sequence untouched except for one draw.
    pub fn split(&mut self) -> Self {
        let seed = self.gen_u64() ^ 0xA5A5_A5A5_5A5A_5A5A;
        Xoshiro256PlusPlus::seed_from(seed)
    }

    #[inline]
    fn gen_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.gen_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.gen_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.gen_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.gen_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Xoshiro256PlusPlus::seed_from(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256PlusPlus::seed_from(state)
    }
}

/// The default simulation RNG type; an alias so call sites stay stable if
/// the algorithm is ever swapped.
pub type SimRng = Xoshiro256PlusPlus;

/// Derives a per-stream seed from a base seed and a stream index.
///
/// Every place that needs "one independent seed per run" (per user count,
/// per replication, per concurrency level) must route through this function
/// rather than `base.wrapping_add(stream)`: additive offsets collide as soon
/// as two sweeps overlap (seed 42 stream 7 == seed 43 stream 6), silently
/// correlating runs that are supposed to be independent. Here the base seed
/// is avalanche-mixed (SplitMix64 finalizer), xor-folded with the mixed
/// stream index, and mixed again, so for any fixed base the map
/// `stream -> seed` is a bijection and small deltas in either input flip
/// about half the output bits.
///
/// # Examples
///
/// ```
/// use dcm_sim::rng::derive_seed;
///
/// // Distinct streams give unrelated seeds...
/// assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
/// // ...and overlapping base/stream pairs no longer alias.
/// assert_ne!(derive_seed(42, 7), derive_seed(43, 6));
/// ```
#[must_use]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer (mix of `base + GOLDEN` then `stream` folded in,
    // then a second pass) — each pass is bijective in u64, so the composite
    // is a bijection in `stream` for any fixed `base`.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let golden = 0x9E37_79B9_7F4A_7C15u64;
    let mixed_base = mix(base.wrapping_add(golden));
    mix(mixed_base ^ stream.wrapping_mul(golden).wrapping_add(golden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: fresh generator reproduces the same pair.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from(99);
        let mut b = Xoshiro256PlusPlus::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256PlusPlus::seed_from(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f64_covers_the_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = Xoshiro256PlusPlus::seed_from(5);
        let mut child = parent.split();
        let p: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn derive_seed_is_collision_free_across_overlapping_sweeps() {
        // The failure mode derive_seed exists to prevent: wrapping_add
        // aliases (base, stream) pairs with equal sums.
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(derive_seed(base, stream)),
                    "collision at base={base} stream={stream}"
                );
            }
        }
    }

    #[test]
    fn derive_seed_is_deterministic_and_bijective_per_base() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        let mut outputs: Vec<u64> = (0..1000).map(|s| derive_seed(99, s)).collect();
        outputs.sort_unstable();
        outputs.dedup();
        assert_eq!(outputs.len(), 1000, "streams must map to distinct seeds");
    }

    #[test]
    fn integrates_with_rand_traits() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
        let x: f64 = rng.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
        let k: u32 = rng.gen_range(1..=6);
        assert!((1..=6).contains(&k));
    }
}
