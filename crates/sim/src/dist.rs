//! Random variate distributions used by workload and service-time models.
//!
//! Implemented here (rather than pulling in `rand_distr`) so sampling
//! algorithms are pinned and the dependency surface stays on the approved
//! list. All samplers draw from the crate's own [`SimRng`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// A source of non-negative `f64` samples (times, sizes, rates).
pub trait Sample {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution mean, if finite and known in closed form.
    fn mean(&self) -> Option<f64>;
}

/// Serializable description of a distribution; the closed set of shapes the
/// simulator knows how to sample.
///
/// # Examples
///
/// ```
/// use dcm_sim::dist::{Dist, Sample};
/// use dcm_sim::rng::SimRng;
///
/// let d = Dist::exponential(2.0); // mean 0.5
/// let mut rng = SimRng::seed_from(1);
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// assert_eq!(d.mean(), Some(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always returns the same value.
    Constant(f64),
    /// Uniform on `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
    /// Exponential with rate `lambda` (mean `1/lambda`).
    Exponential {
        /// Rate parameter (events per unit).
        lambda: f64,
    },
    /// Normal with the given mean and standard deviation, truncated at zero.
    TruncatedNormal {
        /// Mean of the untruncated normal.
        mean: f64,
        /// Standard deviation of the untruncated normal.
        std_dev: f64,
    },
    /// Log-normal parameterized by the underlying normal's `mu`/`sigma`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Pareto with scale `x_min > 0` and shape `alpha > 0`.
    Pareto {
        /// Scale (minimum value).
        x_min: f64,
        /// Tail shape; smaller is heavier.
        alpha: f64,
    },
    /// Erlang-k: sum of `k` exponentials each with rate `lambda`.
    Erlang {
        /// Number of exponential stages.
        k: u32,
        /// Per-stage rate.
        lambda: f64,
    },
}

impl Dist {
    /// A distribution that always yields `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn constant(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "constant must be finite and >= 0"
        );
        Dist::Constant(value)
    }

    /// Uniform on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `low > high`.
    pub fn uniform(low: f64, high: f64) -> Self {
        assert!(
            low.is_finite() && high.is_finite() && low <= high,
            "invalid uniform bounds"
        );
        Dist::Uniform { low, high }
    }

    /// Exponential with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0` or is not finite.
    pub fn exponential(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "lambda must be > 0");
        Dist::Exponential { lambda }
    }

    /// Exponential with the given mean (`lambda = 1/mean`).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or is not finite.
    pub fn exponential_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be > 0");
        Dist::Exponential { lambda: 1.0 / mean }
    }

    /// Normal truncated at zero.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0` or parameters are not finite.
    pub fn truncated_normal(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal params"
        );
        Dist::TruncatedNormal { mean, std_dev }
    }

    /// Log-normal from the underlying normal's parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or parameters are not finite.
    pub fn log_normal(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid lognormal params"
        );
        Dist::LogNormal { mu, sigma }
    }

    /// Pareto with scale `x_min` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto params must be > 0");
        Dist::Pareto { x_min, alpha }
    }

    /// Erlang-k with per-stage rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `lambda <= 0`.
    pub fn erlang(k: u32, lambda: f64) -> Self {
        assert!(k > 0 && lambda > 0.0, "invalid erlang params");
        Dist::Erlang { k, lambda }
    }
}

impl Sample for Dist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { low, high } => low + (high - low) * rng.next_f64(),
            Dist::Exponential { lambda } => sample_exp(rng, lambda),
            Dist::TruncatedNormal { mean, std_dev } => {
                (mean + std_dev * sample_standard_normal(rng)).max(0.0)
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
            Dist::Pareto { x_min, alpha } => {
                // Inverse transform: F^-1(u) = x_min / (1-u)^{1/alpha}.
                let u = rng.next_f64();
                x_min / (1.0 - u).powf(1.0 / alpha)
            }
            Dist::Erlang { k, lambda } => (0..k).map(|_| sample_exp(rng, lambda)).sum(),
        }
    }

    fn mean(&self) -> Option<f64> {
        match *self {
            Dist::Constant(v) => Some(v),
            Dist::Uniform { low, high } => Some((low + high) / 2.0),
            Dist::Exponential { lambda } => Some(1.0 / lambda),
            // Truncation shifts the mean; only exact when the mass below zero
            // is negligible, so report the untruncated mean as approximation
            // only when it is at least 4 sigma above zero.
            Dist::TruncatedNormal { mean, std_dev } => {
                if mean >= 4.0 * std_dev {
                    Some(mean)
                } else {
                    None
                }
            }
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Pareto { x_min, alpha } => {
                if alpha > 1.0 {
                    Some(alpha * x_min / (alpha - 1.0))
                } else {
                    None
                }
            }
            Dist::Erlang { k, lambda } => Some(k as f64 / lambda),
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Dist::Constant(v) => write!(f, "const({v})"),
            Dist::Uniform { low, high } => write!(f, "uniform({low}, {high})"),
            Dist::Exponential { lambda } => write!(f, "exp(rate={lambda})"),
            Dist::TruncatedNormal { mean, std_dev } => write!(f, "normal+({mean}, {std_dev})"),
            Dist::LogNormal { mu, sigma } => write!(f, "lognormal({mu}, {sigma})"),
            Dist::Pareto { x_min, alpha } => write!(f, "pareto({x_min}, {alpha})"),
            Dist::Erlang { k, lambda } => write!(f, "erlang({k}, rate={lambda})"),
        }
    }
}

#[inline]
fn sample_exp(rng: &mut SimRng, lambda: f64) -> f64 {
    // Inverse transform; 1 - u avoids ln(0).
    -(1.0 - rng.next_f64()).ln() / lambda
}

/// Marsaglia polar method for a standard normal variate.
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Weighted discrete sampling over `0..n` via Vose's alias method — O(1) per
/// draw after O(n) setup; used for e.g. picking a servlet from the RUBBoS mix.
///
/// # Examples
///
/// ```
/// use dcm_sim::dist::AliasTable;
/// use dcm_sim::rng::SimRng;
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = SimRng::seed_from(1);
/// let idx = table.sample(&mut rng);
/// assert!(idx < 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

/// Error building an [`AliasTable`] from an invalid weight vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightsError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    Invalid {
        /// Index of the offending weight.
        index: usize,
    },
    /// All weights were zero.
    ZeroSum,
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::Empty => write!(f, "weight vector is empty"),
            WeightsError::Invalid { index } => {
                write!(f, "weight at index {index} is negative or non-finite")
            }
            WeightsError::ZeroSum => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightsError {}

impl AliasTable {
    /// Builds a table from non-negative weights (need not be normalized).
    ///
    /// # Errors
    ///
    /// Returns [`WeightsError`] if the slice is empty, contains a negative or
    /// non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, WeightsError> {
        if weights.is_empty() {
            return Err(WeightsError::Empty);
        }
        for (index, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightsError::Invalid { index });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(WeightsError::ZeroSum);
        }

        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        // Scaled probabilities; > 1 means "overfull" bucket.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large {
            prob[i] = 1.0;
        }
        for i in small {
            prob[i] = 1.0;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let n = self.prob.len();
        let i = (rng.next_f64() * n as f64) as usize % n;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xDCB5)
    }

    fn empirical_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_always_returns_value() {
        let d = Dist::constant(3.25);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 3.25);
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::exponential_mean(0.04);
        let m = empirical_mean(&d, 200_000);
        assert!((m - 0.04).abs() < 0.001, "mean {m}");
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Dist::uniform(2.0, 4.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((empirical_mean(&d, 100_000) - 3.0).abs() < 0.01);
    }

    #[test]
    fn truncated_normal_never_negative() {
        let d = Dist::truncated_normal(0.01, 0.05);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = Dist::log_normal(-3.0, 0.5);
        let expected = (-3.0f64 + 0.125).exp();
        assert_eq!(d.mean(), Some(expected));
        let m = empirical_mean(&d, 300_000);
        assert!(
            (m - expected).abs() / expected < 0.02,
            "mean {m} vs {expected}"
        );
    }

    #[test]
    fn pareto_respects_minimum_and_mean() {
        let d = Dist::pareto(1.0, 3.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 1.0);
        }
        assert_eq!(d.mean(), Some(1.5));
        let m = empirical_mean(&d, 300_000);
        assert!((m - 1.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn pareto_heavy_tail_has_no_mean() {
        assert_eq!(Dist::pareto(1.0, 0.9).mean(), None);
    }

    #[test]
    fn erlang_mean_matches() {
        let d = Dist::erlang(4, 100.0);
        assert_eq!(d.mean(), Some(0.04));
        let m = empirical_mean(&d, 100_000);
        assert!((m - 0.04).abs() < 0.001, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "lambda must be > 0")]
    fn exponential_rejects_zero_rate() {
        let _ = Dist::exponential(0.0);
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert_eq!(AliasTable::new(&[]), Err(WeightsError::Empty));
        assert_eq!(
            AliasTable::new(&[1.0, -2.0]),
            Err(WeightsError::Invalid { index: 1 })
        );
        assert_eq!(AliasTable::new(&[0.0, 0.0]), Err(WeightsError::ZeroSum));
    }

    #[test]
    fn alias_table_matches_weights() {
        let table = AliasTable::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 3];
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(&mut r)] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freq[0] - 0.1).abs() < 0.01, "{freq:?}");
        assert!((freq[1] - 0.2).abs() < 0.01, "{freq:?}");
        assert!((freq[2] - 0.7).abs() < 0.01, "{freq:?}");
    }

    #[test]
    fn alias_table_single_category() {
        let table = AliasTable::new(&[5.0]).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(table.sample(&mut r), 0);
        }
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Dist::constant(1.0).to_string(), "const(1)");
        assert_eq!(Dist::exponential(2.0).to_string(), "exp(rate=2)");
    }
}
