//! Deterministic fault schedules: VM crashes, stragglers, and transient
//! per-request failures.
//!
//! The autoscaling literature treats fault tolerance as a first-class
//! dimension a controller must handle (VMs degrade and die under real cloud
//! conditions), but the paper's evaluation assumes every booted VM stays
//! healthy. This module provides the *schedule* half of a fault-injection
//! subsystem: a [`FaultPlan`] is an ordered list of [`FaultEvent`]s, either
//! written out explicitly or sampled from a seeded RNG via
//! [`FaultPlan::sampled`], so the same seed always produces the same
//! failure history regardless of how many worker jobs execute runs.
//!
//! The plan is deliberately world-agnostic: events name a tier index and a
//! *victim rank* rather than a concrete server id, because server ids only
//! exist once the simulated system is built. The interpretation layer
//! (`dcm_ntier::faults`) resolves ranks against live membership at fire
//! time, which keeps a single plan meaningful across controllers that grow
//! and shrink tiers differently.

use serde::{Deserialize, Serialize};

use crate::rng::{derive_seed, SimRng};

/// What happens to the victim when a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The VM dies instantly: in-flight work on it fails, pools are torn
    /// down, and the balancer stops routing to it.
    Crash,
    /// The VM becomes a straggler: its CPU slows by `factor` for
    /// `duration_secs`, then recovers.
    Straggler {
        /// Service-time multiplier while degraded (e.g. 4.0 = 4× slower).
        factor: f64,
        /// How long the degradation lasts, in seconds.
        duration_secs: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated time at which the fault fires, in seconds.
    pub at_secs: f64,
    /// Tier whose member is targeted.
    pub tier: usize,
    /// Victim rank within the tier's healthy members at fire time
    /// (interpreted modulo the current member count, so a rank is always
    /// resolvable).
    pub victim: usize,
    /// The fault itself.
    pub kind: FaultKind,
}

/// Parameters for sampling a random fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// No fault fires before this time (lets the system warm up).
    pub start_secs: f64,
    /// No fault fires at or after this time.
    pub horizon_secs: f64,
    /// Mean crashes per hour across all targeted tiers.
    pub crash_rate_per_hour: f64,
    /// Mean straggler onsets per hour across all targeted tiers.
    pub straggler_rate_per_hour: f64,
    /// Slowdown factor applied to sampled stragglers.
    pub straggler_factor: f64,
    /// Degradation duration for sampled stragglers, in seconds.
    pub straggler_duration_secs: f64,
    /// Tiers eligible to be struck (victims drawn uniformly).
    pub tiers: Vec<usize>,
    /// Per-request transient failure probability carried on the plan.
    pub transient_failure_prob: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            start_secs: 60.0,
            horizon_secs: 600.0,
            crash_rate_per_hour: 6.0,
            straggler_rate_per_hour: 6.0,
            straggler_factor: 4.0,
            straggler_duration_secs: 60.0,
            tiers: vec![1, 2],
            transient_failure_prob: 0.0,
        }
    }
}

/// A deterministic schedule of faults plus a transient-failure rate.
///
/// # Examples
///
/// ```
/// use dcm_sim::faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::none()
///     .with_crash(120.0, 1, 0)
///     .with_straggler(200.0, 2, 0, 4.0, 60.0)
///     .with_transient_failures(0.001);
/// assert_eq!(plan.events.len(), 2);
/// assert!(matches!(plan.events[0].kind, FaultKind::Crash));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled faults, ordered by `at_secs`.
    pub events: Vec<FaultEvent>,
    /// Probability that any individual request admission fails
    /// transiently (0.0 disables the draw entirely, preserving the RNG
    /// stream of fault-free runs).
    pub transient_failure_prob: f64,
}

impl FaultPlan {
    /// An empty plan: no scheduled faults, no transient failures.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.transient_failure_prob == 0.0
    }

    /// Adds a crash of tier `tier`'s member at rank `victim` at `at_secs`.
    pub fn with_crash(mut self, at_secs: f64, tier: usize, victim: usize) -> Self {
        self.events.push(FaultEvent {
            at_secs,
            tier,
            victim,
            kind: FaultKind::Crash,
        });
        self.sort();
        self
    }

    /// Adds a straggler episode: the victim slows by `factor` at `at_secs`
    /// and recovers after `duration_secs`.
    pub fn with_straggler(
        mut self,
        at_secs: f64,
        tier: usize,
        victim: usize,
        factor: f64,
        duration_secs: f64,
    ) -> Self {
        self.events.push(FaultEvent {
            at_secs,
            tier,
            victim,
            kind: FaultKind::Straggler {
                factor,
                duration_secs,
            },
        });
        self.sort();
        self
    }

    /// Sets the transient per-request failure probability.
    pub fn with_transient_failures(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0,1]");
        self.transient_failure_prob = prob;
        self
    }

    /// Samples a schedule from `spec` using a seed derived from `seed`.
    ///
    /// Crash and straggler onsets are independent Poisson processes
    /// (exponential interarrivals); victims are drawn uniformly over
    /// `spec.tiers`. The RNG is dedicated to the plan (derived stream), so
    /// sampling never perturbs the simulation's own random sequence, and
    /// the same `(seed, spec)` pair always yields the same plan.
    pub fn sampled(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SimRng::seed_from(derive_seed(seed, 0xFA17));
        let mut events = Vec::new();
        let sample_process = |rng: &mut SimRng, rate_per_hour: f64, crash: bool| {
            if rate_per_hour <= 0.0 || spec.tiers.is_empty() {
                return Vec::new();
            }
            let rate_per_sec = rate_per_hour / 3600.0;
            let mut out = Vec::new();
            let mut t = spec.start_secs;
            loop {
                // Exponential interarrival; 1-u keeps the draw in (0,1].
                let u = rng.next_f64();
                t += -(1.0 - u).ln() / rate_per_sec;
                if t >= spec.horizon_secs {
                    break;
                }
                let tier_ix = (rng.next_f64() * spec.tiers.len() as f64) as usize;
                let tier = spec.tiers[tier_ix.min(spec.tiers.len() - 1)];
                let victim = (rng.next_f64() * 64.0) as usize;
                out.push(FaultEvent {
                    at_secs: t,
                    tier,
                    victim,
                    kind: if crash {
                        FaultKind::Crash
                    } else {
                        FaultKind::Straggler {
                            factor: spec.straggler_factor,
                            duration_secs: spec.straggler_duration_secs,
                        }
                    },
                });
            }
            out
        };
        events.extend(sample_process(&mut rng, spec.crash_rate_per_hour, true));
        events.extend(sample_process(
            &mut rng,
            spec.straggler_rate_per_hour,
            false,
        ));
        let mut plan = FaultPlan {
            events,
            transient_failure_prob: spec.transient_failure_prob,
        };
        plan.sort();
        plan
    }

    fn sort(&mut self) {
        // Stable order: by time, then tier, then victim. Ties keep the
        // crash-before-straggler insertion order stable via sort_by's
        // stability, making the plan reproducible byte-for-byte.
        self.events.sort_by(|a, b| {
            a.at_secs
                .total_cmp(&b.at_secs)
                .then(a.tier.cmp(&b.tier))
                .then(a.victim.cmp(&b.victim))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_is_time_ordered() {
        let plan = FaultPlan::none()
            .with_straggler(300.0, 2, 1, 4.0, 30.0)
            .with_crash(100.0, 1, 0);
        assert_eq!(plan.events[0].at_secs, 100.0);
        assert_eq!(plan.events[1].at_secs, 300.0);
        assert!(!plan.is_empty());
    }

    #[test]
    fn sampled_plan_is_deterministic() {
        let spec = FaultSpec {
            crash_rate_per_hour: 60.0,
            straggler_rate_per_hour: 60.0,
            ..FaultSpec::default()
        };
        let a = FaultPlan::sampled(42, &spec);
        let b = FaultPlan::sampled(42, &spec);
        assert_eq!(a, b);
        assert!(
            !a.events.is_empty(),
            "rates this high should produce events"
        );
        let c = FaultPlan::sampled(43, &spec);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn sampled_events_respect_window_and_tiers() {
        let spec = FaultSpec {
            start_secs: 50.0,
            horizon_secs: 400.0,
            crash_rate_per_hour: 120.0,
            straggler_rate_per_hour: 120.0,
            tiers: vec![1],
            ..FaultSpec::default()
        };
        let plan = FaultPlan::sampled(7, &spec);
        for event in &plan.events {
            assert!(event.at_secs > 50.0 && event.at_secs < 400.0);
            assert_eq!(event.tier, 1);
        }
        // Ordered by time.
        for pair in plan.events.windows(2) {
            assert!(pair[0].at_secs <= pair[1].at_secs);
        }
    }

    #[test]
    fn zero_rates_sample_empty() {
        let spec = FaultSpec {
            crash_rate_per_hour: 0.0,
            straggler_rate_per_hour: 0.0,
            ..FaultSpec::default()
        };
        assert!(FaultPlan::sampled(1, &spec).events.is_empty());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_transient_prob() {
        let _ = FaultPlan::none().with_transient_failures(1.5);
    }
}
