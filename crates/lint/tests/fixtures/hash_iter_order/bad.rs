//! Fixture: exactly one hash-iter-order violation (line 3).

pub type Index = std::collections::HashMap<String, usize>;
