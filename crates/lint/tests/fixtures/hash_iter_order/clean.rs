//! Clean twin: same shape, order-stable container.

pub type Index = std::collections::BTreeMap<String, usize>;
