//! Fixture: exactly one unwrap-in-lib violation (line 4).

pub fn head(values: &[u32]) -> u32 {
    *values.first().unwrap()
}
