//! Fixture: exactly one panic-path violation (line 5): slice range
//! computed by arithmetic can overrun.

pub fn window(buf: &[u8], start: usize, len: usize) -> &[u8] {
    &buf[start..start + len]
}
