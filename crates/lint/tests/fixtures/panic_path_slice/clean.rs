//! Clean twin: a checked `get` surfaces the overrun to the caller.

pub fn window(buf: &[u8], start: usize, len: usize) -> Option<&[u8]> {
    buf.get(start..start.saturating_add(len))
}
