//! Fixture: exactly one determinism-taint violation (line 9): a wall-clock
//! value crosses a let binding and lands in an event schedule. Linted under
//! Relaxed scope, where `wall-clock` itself does not run — only the taint
//! pass sees the leak.

pub fn kick(engine: &mut Engine) {
    let start = std::time::Instant::now();
    let at = nanos(start);
    engine.schedule_at(at, Event::Tick);
}
