//! Clean twin: the schedule time derives from simulation time, which is
//! deterministic by construction.

pub fn kick(engine: &mut Engine) {
    let at = engine.now().saturating_add(5);
    engine.schedule_at(at, Event::Tick);
}
