//! Clean twin: explicit seed mixed through `derive_seed`, never entropy
//! and never `base + i` arithmetic.

pub fn roll(base: u64, stream: u64) -> u64 {
    let mut rng = Rng::with_seed(derive_seed(base, stream));
    rng.next_u64()
}
