//! Fixture: exactly one unseeded-rng violation (line 4).

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
