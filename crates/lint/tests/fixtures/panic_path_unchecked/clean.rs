//! Clean twin: the checked accessor returns the absence instead.

pub fn pick(values: &[u32], idx: usize) -> Option<u32> {
    values.get(idx).copied()
}
