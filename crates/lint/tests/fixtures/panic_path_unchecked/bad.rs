//! Fixture: exactly one panic-path violation (line 5): unchecked access
//! is UB on a bad index, not even a clean panic.

pub fn pick(values: &[u32], idx: usize) -> u32 {
    unsafe { *values.get_unchecked(idx) }
}
