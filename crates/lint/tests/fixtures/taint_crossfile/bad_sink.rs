//! Cross-file fixture, file 2 of 2: exactly one determinism-taint
//! violation (line 7) — the tainted return of `boot_nanos()` (defined in
//! `bad_source.rs`, same crate) reaches an event schedule here.

pub fn kick(engine: &mut Engine) {
    let at = boot_nanos();
    engine.schedule_at(at, Event::Tick);
}
