//! Clean twin of `bad_sink.rs`: identical call shape; with the clean
//! `boot_nanos` there is nothing to report.

pub fn kick(engine: &mut Engine) {
    let at = boot_nanos();
    engine.schedule_at(at, Event::Tick);
}
