//! Cross-file fixture, file 1 of 2: a free function whose return value is
//! wall-clock tainted. The leak itself is reported in `bad_sink.rs`, which
//! calls this through the per-crate symbol table.

pub fn boot_nanos() -> u64 {
    let t = std::time::Instant::now();
    as_nanos(t)
}
