//! Clean twin of `bad_source.rs`: the epoch is a configured constant, so
//! the same free function shape carries no taint.

pub fn boot_nanos() -> u64 {
    CONFIGURED_EPOCH_NANOS
}
