//! Fixture: exactly one panic-path violation (line 4): bare unwrap.

pub fn head(values: &[u32]) -> u32 {
    *values.first().unwrap()
}
