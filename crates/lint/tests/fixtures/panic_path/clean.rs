//! Clean twin: surface the absence to the caller instead of panicking.

pub fn head(values: &[u32]) -> Option<u32> {
    values.first().copied()
}
