//! Fixture: a well-formed suppression silences the wall-clock finding on
//! its own line (linted as crate `core`, where suppressions are legal).

pub fn startup_stamp() {
    let t = std::time::Instant::now(); // dcm-lint: allow(wall-clock) reason="fixture: silenced finding"
    drop(t);
}
