//! Fixture: a directive on its own line silences the line below it.

pub fn startup_stamp() {
    // dcm-lint: allow(wall-clock) reason="fixture: directive above the code"
    let t = std::time::Instant::now();
    drop(t);
}
