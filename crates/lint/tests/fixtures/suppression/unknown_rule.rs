//! Fixture: allow(...) naming a rule that does not exist.

pub fn fine() {
    // dcm-lint: allow(no-such-rule) reason="typo'd rule name"
    let x = 1;
    let _ = x;
}
