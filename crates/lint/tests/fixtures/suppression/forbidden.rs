//! Fixture: even a well-formed directive is an error when linted as one of
//! the no-suppression crates (`sim`, `ntier`, `model`, `oracle`).

pub fn startup_stamp() {
    let t = std::time::Instant::now(); // dcm-lint: allow(wall-clock) reason="not in sim you don't"
    drop(t);
}
