//! Fixture: a reasonless directive is itself a violation AND does not
//! silence anything — both diagnostics must surface.

pub fn startup_stamp() {
    let t = std::time::Instant::now(); // dcm-lint: allow(wall-clock)
    drop(t);
}
