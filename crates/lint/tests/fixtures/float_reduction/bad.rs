//! Fixture: exactly one float-reduction violation (line 7) — summing floats
//! in channel-arrival order, which varies with worker interleaving.

pub fn total() -> f64 {
    let (tx, rx) = std::sync::mpsc::channel::<f64>();
    drop(tx);
    let sum: f64 = rx.iter().sum();
    sum
}
