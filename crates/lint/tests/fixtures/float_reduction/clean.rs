//! Clean twin: collect index-tagged parts, sort by index, then reduce —
//! the same pattern `dcm_sim::runner` uses to keep joins order-stable.

pub fn total() -> f64 {
    let (tx, rx) = std::sync::mpsc::channel::<(usize, f64)>();
    drop(tx);
    let mut parts: Vec<(usize, f64)> = rx.iter().collect();
    parts.sort_by_key(|(idx, _)| *idx);
    parts.into_iter().map(|(_, v)| v).sum()
}
