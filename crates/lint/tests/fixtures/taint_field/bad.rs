//! Fixture: exactly one determinism-taint violation (line 16): wall-clock
//! taint stored into a struct field in one method reaches a seed
//! derivation in another. Linted under Relaxed scope so only the taint
//! pass sees it.

pub struct Harness {
    seed_material: u64,
}

impl Harness {
    pub fn build() -> Harness {
        Harness { seed_material: nanos(std::time::SystemTime::now()) }
    }

    pub fn arm(&self, rng: &mut Rng) {
        rng.seed_from_u64(self.seed_material);
    }
}
