//! Clean twin: the seed material is an explicit configuration input, so
//! every run that names the same seed replays bit-identically.

pub struct Harness {
    seed_material: u64,
}

impl Harness {
    pub fn build(seed: u64) -> Harness {
        Harness { seed_material: seed }
    }

    pub fn arm(&self, rng: &mut Rng) {
        rng.seed_from_u64(self.seed_material);
    }
}
