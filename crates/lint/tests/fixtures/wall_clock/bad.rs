//! Fixture: exactly one wall-clock violation (line 4).

pub fn elapsed_wall() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
