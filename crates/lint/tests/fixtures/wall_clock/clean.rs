//! Clean twin: time flows through the simulation clock, not the host's.

pub fn elapsed_sim(now_us: u64, start_us: u64) -> u64 {
    now_us - start_us
}
