//! Fixture: exactly one hot-path-alloc violation (line 5) when linted
//! under a hot-module path (the rule does not run elsewhere).

pub fn snapshot(members: &[u32]) -> Vec<u32> {
    members.to_vec()
}
