//! Clean twin: hand back the borrow; the caller decides whether a copy
//! is worth paying for.

pub fn snapshot(members: &[u32]) -> &[u32] {
    members
}
