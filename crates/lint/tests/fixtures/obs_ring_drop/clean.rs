// Mirror of the dcm-obs recorder's ring-buffer drop path: capacity-zero
// refusal and oldest-first eviction are handled with explicit `is_some()`
// checks and counted drops — no unwrap/expect anywhere on the path.
use std::collections::VecDeque;

pub struct Ring {
    ring: VecDeque<u64>,
    capacity: usize,
    recorded: u64,
    evicted: u64,
}

impl Ring {
    pub fn record(&mut self, span: u64) {
        if self.capacity == 0 {
            self.recorded += 1;
            self.evicted += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            if self.ring.pop_front().is_some() {
                self.evicted += 1;
            }
        }
        self.ring.push_back(span);
        self.recorded += 1;
    }
}
