//! Clean twin: implemented (however trivially).

pub fn capacity_model() -> f64 {
    1.0
}
