//! Fixture: exactly one todo-markers violation (line 4).

pub fn capacity_model() -> f64 {
    todo!("fit the MVA capacity curve")
}
