//! Clean twin: an Acquire load pairs with the writer's Release store, so
//! the branch sees a coherent value.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn gate(flag: &AtomicUsize) -> bool {
    if flag.load(Ordering::Acquire) > 0 {
        return true;
    }
    false
}
