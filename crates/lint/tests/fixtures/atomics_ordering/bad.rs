//! Fixture: exactly one atomics-ordering violation (line 7): a Relaxed
//! load steering a branch.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn gate(flag: &AtomicUsize) -> bool {
    if flag.load(Ordering::Relaxed) > 0 {
        return true;
    }
    false
}
