//! Fixture suite: every rule must fire on its seeded `bad.rs` at the exact
//! documented line, stay quiet on the `clean.rs` twin, and the suppression
//! machinery must behave per the grammar. Ends with the self-test that the
//! live workspace lints clean.

use dcm_lint::rules::{Scope, HOT_MODULES, NO_SUPPRESS_CRATES, RULES};
use dcm_lint::{lint_files, lint_source, FileInput, FileOutcome};
use std::fs;
use std::path::Path;

fn fixture_source(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn lint_fixture(rel: &str, crate_name: &str, scope: Scope) -> FileOutcome {
    lint_source(rel, crate_name, scope, &fixture_source(rel))
}

/// (fixture dir, rule that must fire, line it must fire on).
const PAIRS: &[(&str, &str, u32)] = &[
    ("hash_iter_order", "hash-iter-order", 3),
    ("wall_clock", "wall-clock", 4),
    ("unseeded_rng", "unseeded-rng", 4),
    ("float_reduction", "float-reduction", 7),
    ("panic_path", "panic-path", 4),
    ("panic_path_slice", "panic-path", 5),
    ("panic_path_unchecked", "panic-path", 5),
    ("atomics_ordering", "atomics-ordering", 7),
    ("todo_markers", "todo-markers", 4),
];

#[test]
fn every_rule_fires_on_its_bad_fixture_at_the_documented_line() {
    for &(dir, rule, line) in PAIRS {
        let out = lint_fixture(&format!("{dir}/bad.rs"), "core", Scope::Strict);
        assert_eq!(
            out.diagnostics.len(),
            1,
            "{dir}/bad.rs must seed exactly one violation, got {:?}",
            out.diagnostics
        );
        let d = &out.diagnostics[0];
        assert_eq!(d.rule, rule, "{dir}/bad.rs fired the wrong rule");
        assert_eq!(
            d.line, line,
            "{dir}/bad.rs: `{rule}` fired on the wrong line"
        );
        assert_eq!(d.path, format!("{dir}/bad.rs"));
    }
}

#[test]
fn every_clean_twin_is_quiet() {
    for &(dir, _, _) in PAIRS {
        let out = lint_fixture(&format!("{dir}/clean.rs"), "core", Scope::Strict);
        assert!(
            out.diagnostics.is_empty(),
            "{dir}/clean.rs must lint clean, got {:?}",
            out.diagnostics
        );
        assert!(out.used_suppressions.is_empty());
    }
}

#[test]
fn pairs_cover_every_behavioural_rule() {
    // The two suppression-hygiene rules are covered by the directive tests
    // below; `hot-path-alloc` needs a hot-module path and is covered by
    // `hot_module_rules_fire_under_a_hot_path`; `determinism-taint` needs
    // Relaxed scope (so the strict source rules stay out of the way) and is
    // covered by the three `taint_*` tests. Every other rule in the
    // registry must have a PAIRS fixture pair.
    let mut covered: Vec<&str> = PAIRS.iter().map(|&(_, rule, _)| rule).collect();
    covered.extend(["hot-path-alloc", "determinism-taint"]);
    for rule in RULES {
        if rule.name == "bad-suppression" || rule.name == "forbidden-suppression" {
            continue;
        }
        assert!(
            covered.contains(&rule.name),
            "rule `{}` has no fixture pair",
            rule.name
        );
    }
}

#[test]
fn hot_module_rules_fire_under_a_hot_path() {
    // `hot-path-alloc` keys on the file path, so the fixture is linted as
    // though it were each configured hot module in turn.
    for hot_path in HOT_MODULES {
        let crate_name = hot_path.split('/').nth(1).expect("crates/<name>/...");
        let out = lint_source(
            hot_path,
            crate_name,
            Scope::Strict,
            &fixture_source("hot_path_alloc/bad.rs"),
        );
        assert_eq!(
            out.diagnostics.len(),
            1,
            "{hot_path}: expected exactly one finding, got {:?}",
            out.diagnostics
        );
        assert_eq!(out.diagnostics[0].rule, "hot-path-alloc");
        assert_eq!(out.diagnostics[0].line, 5);

        let clean = lint_source(
            hot_path,
            crate_name,
            Scope::Strict,
            &fixture_source("hot_path_alloc/clean.rs"),
        );
        assert!(clean.diagnostics.is_empty(), "got {:?}", clean.diagnostics);
    }
    // Outside the hot-module list the same source is not hot-path-checked.
    let elsewhere = lint_fixture("hot_path_alloc/bad.rs", "core", Scope::Strict);
    assert!(
        elsewhere.diagnostics.is_empty(),
        "hot-path-alloc must not fire outside HOT_MODULES, got {:?}",
        elsewhere.diagnostics
    );
}

#[test]
fn taint_leak_through_let_binding() {
    // Relaxed scope: `wall-clock` is strict-only, so the only thing that
    // can see this leak is the taint pass.
    let out = lint_fixture("taint_binding/bad.rs", "bench", Scope::Relaxed);
    assert_eq!(
        out.diagnostics.len(),
        1,
        "expected exactly the taint finding, got {:?}",
        out.diagnostics
    );
    assert_eq!(out.diagnostics[0].rule, "determinism-taint");
    assert_eq!(out.diagnostics[0].line, 9);
    assert!(out.diagnostics[0].message.contains("schedule_at"));

    let clean = lint_fixture("taint_binding/clean.rs", "bench", Scope::Relaxed);
    assert!(clean.diagnostics.is_empty(), "got {:?}", clean.diagnostics);
}

#[test]
fn taint_leak_through_struct_field() {
    let out = lint_fixture("taint_field/bad.rs", "bench", Scope::Relaxed);
    assert_eq!(
        out.diagnostics.len(),
        1,
        "expected exactly the taint finding, got {:?}",
        out.diagnostics
    );
    assert_eq!(out.diagnostics[0].rule, "determinism-taint");
    assert_eq!(out.diagnostics[0].line, 16);
    assert!(out.diagnostics[0].message.contains("seed_from_u64"));

    let clean = lint_fixture("taint_field/clean.rs", "bench", Scope::Relaxed);
    assert!(clean.diagnostics.is_empty(), "got {:?}", clean.diagnostics);
}

#[test]
fn taint_leak_through_cross_file_call() {
    let lint_pair = |source_file: &str, sink_file: &str| {
        let source = fixture_source(source_file);
        let sink = fixture_source(sink_file);
        let inputs = [
            FileInput {
                rel_path: source_file,
                crate_name: "bench",
                scope: Scope::Relaxed,
                source: &source,
            },
            FileInput {
                rel_path: sink_file,
                crate_name: "bench",
                scope: Scope::Relaxed,
                source: &sink,
            },
        ];
        lint_files(&inputs)
    };

    let report = lint_pair(
        "taint_crossfile/bad_source.rs",
        "taint_crossfile/bad_sink.rs",
    );
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly the cross-file taint finding, got {:?}",
        report.diagnostics
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, "determinism-taint");
    assert_eq!(d.path, "taint_crossfile/bad_sink.rs");
    assert_eq!(d.line, 7);
    assert!(
        d.message.contains("boot_nanos"),
        "finding must name the cross-file carrier: {}",
        d.message
    );

    let clean = lint_pair(
        "taint_crossfile/clean_source.rs",
        "taint_crossfile/clean_sink.rs",
    );
    assert!(
        clean.diagnostics.is_empty(),
        "clean twins must be quiet, got {:?}",
        clean.diagnostics
    );
}

#[test]
fn wellformed_directive_silences_same_line() {
    let out = lint_fixture("suppression/silenced.rs", "core", Scope::Strict);
    assert!(out.diagnostics.is_empty(), "got {:?}", out.diagnostics);
    assert_eq!(out.used_suppressions.len(), 1);
    let s = &out.used_suppressions[0];
    assert_eq!(s.rule, "wall-clock");
    assert_eq!(s.line, 5);
    assert_eq!(s.reason, "fixture: silenced finding");
}

#[test]
fn wellformed_directive_silences_line_below() {
    let out = lint_fixture("suppression/line_above.rs", "core", Scope::Strict);
    assert!(out.diagnostics.is_empty(), "got {:?}", out.diagnostics);
    assert_eq!(out.used_suppressions.len(), 1);
    assert_eq!(out.used_suppressions[0].line, 4);
}

#[test]
fn reasonless_directive_is_flagged_and_does_not_silence() {
    let out = lint_fixture("suppression/missing_reason.rs", "core", Scope::Strict);
    let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules,
        vec!["bad-suppression", "wall-clock"],
        "got {:?}",
        out.diagnostics
    );
    assert!(out.diagnostics.iter().all(|d| d.line == 5));
    assert!(out.used_suppressions.is_empty());
}

#[test]
fn unknown_rule_in_allow_is_flagged() {
    let out = lint_fixture("suppression/unknown_rule.rs", "core", Scope::Strict);
    assert_eq!(out.diagnostics.len(), 1);
    assert_eq!(out.diagnostics[0].rule, "bad-suppression");
    assert_eq!(out.diagnostics[0].line, 4);
    assert!(out.diagnostics[0].message.contains("no-such-rule"));
}

#[test]
fn any_directive_in_sim_critical_crates_is_an_error() {
    for crate_name in NO_SUPPRESS_CRATES {
        let out = lint_fixture("suppression/forbidden.rs", crate_name, Scope::Strict);
        let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec!["forbidden-suppression", "wall-clock"],
            "crate `{crate_name}`: got {:?}",
            out.diagnostics
        );
        assert!(
            out.used_suppressions.is_empty(),
            "crate `{crate_name}` must not honour the directive"
        );
    }
    // ... while `core` (strict, but not sim-critical) honours it.
    let out = lint_fixture("suppression/forbidden.rs", "core", Scope::Strict);
    assert!(out.diagnostics.is_empty());
    assert_eq!(out.used_suppressions.len(), 1);
}

#[test]
fn recorder_ring_drop_path_is_unwrap_free() {
    // The fixture mirrors the shape of the dcm-obs eviction path and must
    // lint clean under Strict as crate `obs`.
    let out = lint_fixture("obs_ring_drop/clean.rs", "obs", Scope::Strict);
    assert!(
        out.diagnostics.is_empty(),
        "ring drop fixture must lint clean, got {:?}",
        out.diagnostics
    );
    assert!(out.used_suppressions.is_empty());
    // And the real recorder source itself: the drop path ships with no
    // unwrap and no suppression directives.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../obs/src/recorder.rs");
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("recorder source {} unreadable: {e}", path.display()));
    let out = lint_source("crates/obs/src/recorder.rs", "obs", Scope::Strict, &source);
    assert!(
        out.diagnostics.is_empty(),
        "crates/obs/src/recorder.rs must pass Strict, got {:?}",
        out.diagnostics
    );
    assert!(out.used_suppressions.is_empty());
}

#[test]
fn live_workspace_lints_clean_with_no_sim_critical_suppressions() {
    let root = dcm_lint::default_root();
    let report = dcm_lint::lint_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert_eq!(
        report.errors(),
        0,
        "workspace must lint clean:\n{}",
        report.render_text()
    );
    assert_eq!(report.warnings(), 0, "workspace has lint warnings");
    for crate_dir in NO_SUPPRESS_CRATES {
        assert_eq!(
            report.suppressions_in_crate(crate_dir),
            0,
            "crate `{crate_dir}` must carry zero suppressions"
        );
    }
}
