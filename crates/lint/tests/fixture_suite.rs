//! Fixture suite: every rule must fire on its seeded `bad.rs` at the exact
//! documented line, stay quiet on the `clean.rs` twin, and the suppression
//! machinery must behave per the grammar. Ends with the self-test that the
//! live workspace lints clean.

use dcm_lint::rules::{Scope, NO_SUPPRESS_CRATES, RULES};
use dcm_lint::{lint_source, FileOutcome};
use std::fs;
use std::path::Path;

fn lint_fixture(rel: &str, crate_name: &str, scope: Scope) -> FileOutcome {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(rel, crate_name, scope, &source)
}

/// (fixture dir, rule that must fire, line it must fire on).
const PAIRS: &[(&str, &str, u32)] = &[
    ("hash_iter_order", "hash-iter-order", 3),
    ("wall_clock", "wall-clock", 4),
    ("unseeded_rng", "unseeded-rng", 4),
    ("float_reduction", "float-reduction", 7),
    ("unwrap_in_lib", "unwrap-in-lib", 4),
    ("todo_markers", "todo-markers", 4),
];

#[test]
fn every_rule_fires_on_its_bad_fixture_at_the_documented_line() {
    for &(dir, rule, line) in PAIRS {
        let out = lint_fixture(&format!("{dir}/bad.rs"), "core", Scope::Strict);
        assert_eq!(
            out.diagnostics.len(),
            1,
            "{dir}/bad.rs must seed exactly one violation, got {:?}",
            out.diagnostics
        );
        let d = &out.diagnostics[0];
        assert_eq!(d.rule, rule, "{dir}/bad.rs fired the wrong rule");
        assert_eq!(
            d.line, line,
            "{dir}/bad.rs: `{rule}` fired on the wrong line"
        );
        assert_eq!(d.path, format!("{dir}/bad.rs"));
    }
}

#[test]
fn every_clean_twin_is_quiet() {
    for &(dir, _, _) in PAIRS {
        let out = lint_fixture(&format!("{dir}/clean.rs"), "core", Scope::Strict);
        assert!(
            out.diagnostics.is_empty(),
            "{dir}/clean.rs must lint clean, got {:?}",
            out.diagnostics
        );
        assert!(out.used_suppressions.is_empty());
    }
}

#[test]
fn pairs_cover_every_behavioural_rule() {
    // The two suppression-hygiene rules are covered by the tests below;
    // every other rule in the registry must have a fixture pair.
    let covered: Vec<&str> = PAIRS.iter().map(|&(_, rule, _)| rule).collect();
    for rule in RULES {
        if rule.name == "bad-suppression" || rule.name == "forbidden-suppression" {
            continue;
        }
        assert!(
            covered.contains(&rule.name),
            "rule `{}` has no fixture pair",
            rule.name
        );
    }
}

#[test]
fn wellformed_directive_silences_same_line() {
    let out = lint_fixture("suppression/silenced.rs", "core", Scope::Strict);
    assert!(out.diagnostics.is_empty(), "got {:?}", out.diagnostics);
    assert_eq!(out.used_suppressions.len(), 1);
    let s = &out.used_suppressions[0];
    assert_eq!(s.rule, "wall-clock");
    assert_eq!(s.line, 5);
    assert_eq!(s.reason, "fixture: silenced finding");
}

#[test]
fn wellformed_directive_silences_line_below() {
    let out = lint_fixture("suppression/line_above.rs", "core", Scope::Strict);
    assert!(out.diagnostics.is_empty(), "got {:?}", out.diagnostics);
    assert_eq!(out.used_suppressions.len(), 1);
    assert_eq!(out.used_suppressions[0].line, 4);
}

#[test]
fn reasonless_directive_is_flagged_and_does_not_silence() {
    let out = lint_fixture("suppression/missing_reason.rs", "core", Scope::Strict);
    let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules,
        vec!["bad-suppression", "wall-clock"],
        "got {:?}",
        out.diagnostics
    );
    assert!(out.diagnostics.iter().all(|d| d.line == 5));
    assert!(out.used_suppressions.is_empty());
}

#[test]
fn unknown_rule_in_allow_is_flagged() {
    let out = lint_fixture("suppression/unknown_rule.rs", "core", Scope::Strict);
    assert_eq!(out.diagnostics.len(), 1);
    assert_eq!(out.diagnostics[0].rule, "bad-suppression");
    assert_eq!(out.diagnostics[0].line, 4);
    assert!(out.diagnostics[0].message.contains("no-such-rule"));
}

#[test]
fn any_directive_in_sim_critical_crates_is_an_error() {
    for crate_name in NO_SUPPRESS_CRATES {
        let out = lint_fixture("suppression/forbidden.rs", crate_name, Scope::Strict);
        let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec!["forbidden-suppression", "wall-clock"],
            "crate `{crate_name}`: got {:?}",
            out.diagnostics
        );
        assert!(
            out.used_suppressions.is_empty(),
            "crate `{crate_name}` must not honour the directive"
        );
    }
    // ... while `core` (strict, but not sim-critical) honours it.
    let out = lint_fixture("suppression/forbidden.rs", "core", Scope::Strict);
    assert!(out.diagnostics.is_empty());
    assert_eq!(out.used_suppressions.len(), 1);
}

#[test]
fn recorder_ring_drop_path_is_unwrap_free() {
    // The fixture mirrors the shape of the dcm-obs eviction path and must
    // lint clean under Strict as crate `obs`.
    let out = lint_fixture("obs_ring_drop/clean.rs", "obs", Scope::Strict);
    assert!(
        out.diagnostics.is_empty(),
        "ring drop fixture must lint clean, got {:?}",
        out.diagnostics
    );
    assert!(out.used_suppressions.is_empty());
    // And the real recorder source itself: the drop path ships with no
    // unwrap and no suppression directives.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../obs/src/recorder.rs");
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("recorder source {} unreadable: {e}", path.display()));
    let out = lint_source("crates/obs/src/recorder.rs", "obs", Scope::Strict, &source);
    assert!(
        out.diagnostics.is_empty(),
        "crates/obs/src/recorder.rs must pass Strict, got {:?}",
        out.diagnostics
    );
    assert!(out.used_suppressions.is_empty());
}

#[test]
fn live_workspace_lints_clean_with_no_sim_critical_suppressions() {
    let root = dcm_lint::default_root();
    let report = dcm_lint::lint_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert_eq!(
        report.errors(),
        0,
        "workspace must lint clean:\n{}",
        report.render_text()
    );
    assert_eq!(report.warnings(), 0, "workspace has lint warnings");
    for crate_dir in NO_SUPPRESS_CRATES {
        assert_eq!(
            report.suppressions_in_crate(crate_dir),
            0,
            "crate `{crate_dir}` must carry zero suppressions"
        );
    }
}
