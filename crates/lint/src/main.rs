//! The standalone `dcm-lint` binary.
//!
//! ```text
//! cargo run -p dcm-lint                  # text diagnostics, exit 1 on errors
//! cargo run -p dcm-lint -- --format json # also writes results/lint.json + lint.sarif
//! cargo run -p dcm-lint -- --root ../dcm --format json --out /tmp/lint.json
//! ```

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        json: false,
        out: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                cli.root = Some(PathBuf::from(dir));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => cli.json = true,
                Some("text") => cli.json = false,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--out" => {
                let path = args.next().ok_or("--out needs a file path")?;
                cli.out = Some(PathBuf::from(path));
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: dcm-lint [--root DIR] [--format text|json] \
                     [--out FILE]"
                ))
            }
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    let root = cli.root.unwrap_or_else(dcm_lint::default_root);
    let report = match dcm_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dcm-lint: cannot scan {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if cli.json {
        let json = report.to_json();
        let out = cli.out.unwrap_or_else(|| root.join("results/lint.json"));
        if let Some(dir) = out.parent() {
            if let Err(err) = fs::create_dir_all(dir) {
                eprintln!("dcm-lint: cannot create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(err) = fs::write(&out, &json) {
            eprintln!("dcm-lint: cannot write {}: {err}", out.display());
            return ExitCode::FAILURE;
        }
        // The SARIF twin rides along for CI annotations, named after the
        // JSON path (`lint.json` → `lint.sarif`).
        let sarif_out = out.with_extension("sarif");
        if let Err(err) = fs::write(&sarif_out, report.to_sarif()) {
            eprintln!("dcm-lint: cannot write {}: {err}", sarif_out.display());
            return ExitCode::FAILURE;
        }
        print!("{json}");
        eprintln!("dcm-lint: wrote {}", out.display());
        eprintln!("dcm-lint: wrote {}", sarif_out.display());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
