//! Workspace discovery and the crate-scope policy.
//!
//! Files are mapped onto [`Scope`]s by path alone — the module-path
//! resolver this lint needs is "which crate and which kind of target does
//! this file belong to", not full `mod` resolution:
//!
//! * `crates/{sim,bus,ntier,model,oracle,workload,core,obs}/src/**` —
//!   **strict** (the determinism-critical library crates),
//! * `crates/{bench,lint}/src/**` and `shims/*/src/**` — **relaxed**
//!   (harness, tooling, and vendored stand-ins; wall-clock instrumentation
//!   is legitimate there),
//! * any `tests/`, `benches/`, `examples/` directory — **test** scope,
//! * `tests/fixtures/` directories are excluded entirely (they are lint
//!   corpora, deliberately full of violations).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::Scope;

/// Directory names (under `crates/`) of the determinism-critical crates.
pub const STRICT_CRATES: &[&str] = &[
    "sim", "bus", "ntier", "model", "oracle", "workload", "core", "obs",
];

/// One file scheduled for linting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (stable across hosts).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Crate directory name (`sim`, `core`, ...; empty outside `crates/`
    /// and `shims/`).
    pub crate_name: String,
    /// Policy scope.
    pub scope: Scope,
}

/// Classifies one workspace-relative path. Returns `None` for files the
/// lint does not cover (non-Rust files, fixture corpora).
pub fn classify(rel_path: &str) -> Option<(String, Scope)> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.contains(&"fixtures") {
        return None;
    }
    let test_dir = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"));
    match parts.as_slice() {
        ["crates", krate, rest @ ..] => {
            let scope = if test_dir {
                Scope::Test
            } else if rest.first() == Some(&"src") && STRICT_CRATES.contains(krate) {
                Scope::Strict
            } else {
                Scope::Relaxed
            };
            Some(((*krate).to_string(), scope))
        }
        ["shims", shim, ..] => {
            let scope = if test_dir {
                Scope::Test
            } else {
                Scope::Relaxed
            };
            Some(((*shim).to_string(), scope))
        }
        _ => test_dir.then(|| (String::new(), Scope::Test)),
    }
}

/// Walks the workspace rooted at `root` and returns every coverable Rust
/// source file, sorted by relative path (so reports are byte-stable).
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "shims", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, files)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let rel_path = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if let Some((crate_name, scope)) = classify(&rel_path) {
                files.push(SourceFile {
                    rel_path,
                    abs_path: path,
                    crate_name,
                    scope,
                });
            }
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_policy_matches_the_issue() {
        assert_eq!(
            classify("crates/sim/src/engine.rs"),
            Some(("sim".into(), Scope::Strict))
        );
        assert_eq!(
            classify("crates/core/src/controller.rs"),
            Some(("core".into(), Scope::Strict))
        );
        assert_eq!(
            classify("crates/obs/src/recorder.rs"),
            Some(("obs".into(), Scope::Strict))
        );
        assert_eq!(
            classify("crates/obs/tests/trace_golden.rs"),
            Some(("obs".into(), Scope::Test))
        );
        assert_eq!(
            classify("crates/bench/src/bin/repro.rs"),
            Some(("bench".into(), Scope::Relaxed))
        );
        assert_eq!(
            classify("crates/lint/src/rules.rs"),
            Some(("lint".into(), Scope::Relaxed))
        );
        assert_eq!(
            classify("crates/sim/tests/proptests.rs"),
            Some(("sim".into(), Scope::Test))
        );
        assert_eq!(
            classify("crates/bench/benches/substrate.rs"),
            Some(("bench".into(), Scope::Test))
        );
        assert_eq!(
            classify("shims/criterion/src/lib.rs"),
            Some(("criterion".into(), Scope::Relaxed))
        );
        assert_eq!(
            classify("tests/full_stack.rs"),
            Some((String::new(), Scope::Test))
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some((String::new(), Scope::Test))
        );
        assert_eq!(
            classify("crates/lint/tests/fixtures/unwrap_in_lib.rs"),
            None
        );
        assert_eq!(classify("README.md"), None);
        assert_eq!(classify("src/main.rs"), None);
    }
}
