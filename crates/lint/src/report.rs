//! Aggregated lint results and their text / JSON renderings.
//!
//! The JSON form is byte-stable for identical inputs: files are visited in
//! sorted order, diagnostics are sorted by `(path, line, rule)`, paths are
//! workspace-relative with forward slashes, and nothing time- or
//! host-dependent is emitted — CI `cmp`s two runs of `results/lint.json`.

use crate::rules::{Diagnostic, Severity, UsedSuppression, RULES};

/// The result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, sorted by `(path, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Every suppression that silenced a finding, sorted the same way.
    pub suppressions: Vec<UsedSuppression>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of error-severity findings (these fail the build).
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Suppressions used inside a given crate directory name.
    pub fn suppressions_in_crate(&self, crate_dir: &str) -> usize {
        let prefix = format!("crates/{crate_dir}/");
        self.suppressions
            .iter()
            .filter(|s| s.path.starts_with(&prefix))
            .count()
    }

    /// Sorts both lists into their canonical output order.
    pub fn finalize(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.suppressions
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}: {}\n    fix: {}\n",
                d.path,
                d.line,
                d.severity.label(),
                d.rule,
                d.message,
                d.hint
            ));
        }
        for s in &self.suppressions {
            out.push_str(&format!(
                "{}:{}: [suppressed] {} — reason: {}\n",
                s.path, s.line, s.rule, s.reason
            ));
        }
        out.push_str(&format!(
            "dcm-lint: {} file{} scanned, {} error{}, {} warning{}, {} suppression{}\n",
            self.files_scanned,
            plural(self.files_scanned),
            self.errors(),
            plural(self.errors()),
            self.warnings(),
            plural(self.warnings()),
            self.suppressions.len(),
            plural(self.suppressions.len()),
        ));
        out
    }

    /// Machine-readable rendering (see module docs for stability rules).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n  \"version\": 1,\n");
        json.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        json.push_str(&format!(
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"suppressions\": {}}},\n",
            self.errors(),
            self.warnings(),
            self.suppressions.len()
        ));
        json.push_str("  \"rules\": [\n");
        for (i, r) in RULES.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"strict_only\": {}, \"description\": \"{}\"}}{}\n",
                escape(r.name),
                r.strict_only,
                escape(r.description),
                comma(i, RULES.len())
            ));
        }
        json.push_str("  ],\n  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
                 \"severity\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\"}}{}\n",
                escape(&d.path),
                d.line,
                escape(d.rule),
                d.severity.label(),
                escape(&d.message),
                escape(d.hint),
                comma(i, self.diagnostics.len())
            ));
        }
        json.push_str("  ],\n  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}{}\n",
                escape(&s.path),
                s.line,
                escape(&s.rule),
                escape(&s.reason),
                comma(i, self.suppressions.len())
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// SARIF 2.1.0 rendering, so findings surface as CI annotations.
    ///
    /// The output is byte-stable under the same rules as [`Self::to_json`]:
    /// rules in registry order, results in `(path, line, rule)` order, no
    /// timestamps, hosts, or absolute paths. Severity maps to SARIF
    /// `level` (`error`/`warning`); suppressions that silenced a finding
    /// are not SARIF results (they are audited via the JSON report).
    pub fn to_sarif(&self) -> String {
        let mut sarif = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
             \"driver\": {\n          \"name\": \"dcm-lint\",\n          \
             \"rules\": [\n",
        );
        for (i, r) in RULES.iter().enumerate() {
            sarif.push_str(&format!(
                "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
                 \"help\": {{\"text\": \"{}\"}}}}{}\n",
                escape(r.name),
                escape(r.description),
                escape(r.hint),
                comma(i, RULES.len())
            ));
        }
        sarif.push_str("          ]\n        }\n      },\n      \"results\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            sarif.push_str(&format!(
                "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
                 \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                 \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
                escape(d.rule),
                d.severity.label(),
                escape(&d.message),
                escape(&d.path),
                d.line,
                comma(i, self.diagnostics.len())
            ));
        }
        sarif.push_str("      ]\n    }\n  ]\n}\n");
        sarif
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn sample() -> Report {
        let mut report = Report {
            diagnostics: vec![
                Diagnostic {
                    path: "crates/core/src/b.rs".into(),
                    line: 3,
                    rule: "wall-clock",
                    severity: Severity::Error,
                    message: "`Instant` (wall clock) in simulation code".into(),
                    hint: "use SimTime",
                },
                Diagnostic {
                    path: "crates/core/src/a.rs".into(),
                    line: 9,
                    rule: "todo-markers",
                    severity: Severity::Warning,
                    message: "`todo!` in non-test code".into(),
                    hint: "implement it",
                },
            ],
            suppressions: vec![],
            files_scanned: 2,
        };
        report.finalize();
        report
    }

    #[test]
    fn counts_and_ordering() {
        let r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.diagnostics[0].path, "crates/core/src/a.rs");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"errors\": 1"));
        assert!(
            a.contains("\\\"\\\""),
            "expect(\\\"\\\") in rule docs survives escaping"
        );
    }

    #[test]
    fn sarif_is_stable_and_complete() {
        let r = sample();
        let a = r.to_sarif();
        assert_eq!(a, r.to_sarif(), "two renders must be byte-identical");
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("\"name\": \"dcm-lint\""));
        // Every registered rule and every diagnostic appears.
        for rule in RULES {
            assert!(a.contains(&format!("\"id\": \"{}\"", rule.name)));
        }
        assert!(a.contains("\"ruleId\": \"wall-clock\", \"level\": \"error\""));
        assert!(a.contains("\"uri\": \"crates/core/src/a.rs\""));
        assert!(a.contains("\"startLine\": 9"));
    }

    #[test]
    fn text_render_mentions_every_finding() {
        let text = sample().render_text();
        assert!(text.contains("crates/core/src/b.rs:3: [error] wall-clock"));
        assert!(text.contains("2 files scanned, 1 error, 1 warning"));
    }
}
