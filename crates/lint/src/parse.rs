//! A lightweight item/expression parser over the token stream — just
//! enough structure for the cross-file determinism taint pass.
//!
//! This is deliberately *not* a Rust grammar. The taint analysis in
//! [`crate::taint`] needs four things a flat token scan cannot give it:
//!
//! 1. function items with their parameter names and body token spans
//!    (so taint can be tracked per function and summarized per crate),
//! 2. whether a function is *free* (module-level) or an associated item —
//!    only free functions enter the cross-file call summary, because a
//!    bare method name cannot be resolved to a receiver type without
//!    type inference,
//! 3. statement boundaries inside a body (let bindings, assignments,
//!    returns, trailing expressions), and
//! 4. matching-delimiter spans, shared with the rule engine.
//!
//! Anything the parser cannot classify it simply skips; the taint pass is
//! conservative about what it *does* see, never about what it doesn't.

use crate::lexer::{LexedFile, Token};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Parameter binding names, in order (`self` included when present).
    pub params: Vec<String>,
    /// Token range of the body, exclusive of the braces: `[start, end)`.
    /// Empty for bodiless trait-method declarations.
    pub body: (usize, usize),
    /// True when the item sits at module level (not inside an `impl` or
    /// `trait` block). Only free functions enter the cross-file summary.
    pub free: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// The parsed form of one file: every `fn` item, in source order.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All function items (free and associated, nested ones included).
    pub fns: Vec<FnItem>,
}

/// Index of the token matching the opening delimiter at `open`
/// (`(`/`[`/`{`), or `toks.len()` when unterminated. All three delimiter
/// kinds are tracked so a stray bracket inside the span cannot derail the
/// match.
pub fn matching(toks: &[Token], open: usize) -> usize {
    let (op, cl) = match &toks[open].kind {
        crate::lexer::TokKind::Punct('(') => ('(', ')'),
        crate::lexer::TokKind::Punct('[') => ('[', ']'),
        crate::lexer::TokKind::Punct('{') => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct(op) {
            depth += 1;
        } else if toks[j].is_punct(cl) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Parses every `fn` item out of a lexed file.
pub fn parse(lexed: &LexedFile) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut fns = Vec::new();
    // Block-context tracking: an `impl`/`trait` keyword taints the next
    // `{` it opens, and any fn whose enclosing block stack contains one is
    // an associated item. `assoc_depth` counts how many currently-open
    // braces belong to impl/trait blocks.
    let mut pending_assoc = false;
    let mut stack: Vec<bool> = Vec::new(); // per open brace: is impl/trait?
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("impl") || t.is_ident("trait") {
            pending_assoc = true;
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            stack.push(pending_assoc);
            pending_assoc = false;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            stack.pop();
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            // `impl Trait for Type;` never happens, but a stray `;` after
            // an impl keyword (e.g. in macros) must clear the flag.
            pending_assoc = false;
            i += 1;
            continue;
        }
        if !t.is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        let line = t.line;
        // Find the parameter list: first `(` after the name (skipping
        // generics `<...>`).
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                angle += 1;
            } else if toks[j].is_punct('>') {
                angle -= 1;
            } else if toks[j].is_punct('(') && angle <= 0 {
                break;
            } else if toks[j].is_punct('{') || toks[j].is_punct(';') {
                break; // malformed; bail on this item
            }
            j += 1;
        }
        if !(j < toks.len() && toks[j].is_punct('(')) {
            i += 1;
            continue;
        }
        let params_close = matching(toks, j);
        let params = param_names(&toks[j + 1..params_close.min(toks.len())]);
        // Find the body `{` (skipping `-> Type` and where-clauses), or a
        // `;` for a bodiless declaration.
        let mut k = params_close + 1;
        let mut body = (0usize, 0usize);
        while k < toks.len() {
            if toks[k].is_punct('{') {
                let close = matching(toks, k);
                body = (k + 1, close.min(toks.len()));
                break;
            }
            if toks[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        fns.push(FnItem {
            name: name.to_string(),
            params,
            body,
            free: !stack.iter().any(|&assoc| assoc),
            line,
        });
        // Continue scanning *inside* the body too (nested fns, and the
        // block-context stack stays consistent because we did not skip
        // the braces).
        i += 2;
    }
    ParsedFile { fns }
}

/// Extracts parameter binding names from a parameter-list token span:
/// `self`, `mut name: Type`, `name: Type`. Pattern parameters
/// (`(a, b): (u32, u32)`) are skipped — the taint pass just loses sight of
/// them, which is the conservative direction for a *source* tracker.
fn param_names(span: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0i32;
    let mut at_param_start = true;
    let mut idx = 0usize;
    while idx < span.len() {
        let t = &span[idx];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            at_param_start = true;
            idx += 1;
            continue;
        } else if at_param_start && depth == 0 {
            if t.is_punct('&') || t.is_ident("mut") {
                idx += 1;
                continue; // `&self`, `&mut self`, `mut name`
            }
            if let Some(name) = t.ident() {
                // `self` has no `: Type` annotation; everything else must
                // be followed by a single `:` (not a `::` path) to count
                // as a plain binding.
                let plain_binding = span.get(idx + 1).is_some_and(|n| n.is_punct(':'))
                    && !span.get(idx + 2).is_some_and(|n| n.is_punct(':'));
                if name == "self" || plain_binding {
                    names.push(name.to_string());
                }
            }
            at_param_start = false;
        }
        idx += 1;
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_and_associated_fns_are_distinguished() {
        let src = r#"
            pub fn helper(x: u64) -> u64 { x + 1 }
            struct S { v: u64 }
            impl S {
                fn method(&self, y: u64) -> u64 { self.v + y }
            }
            trait T {
                fn decl(&self);
                fn defaulted(&self) -> u64 { 0 }
            }
            mod inner {
                pub fn nested_free() -> u64 { 7 }
            }
        "#;
        let parsed = parse_src(src);
        let by_name = |n: &str| parsed.fns.iter().find(|f| f.name == n).expect("fn parsed");
        assert!(by_name("helper").free);
        assert!(!by_name("method").free);
        assert!(!by_name("decl").free);
        assert!(!by_name("defaulted").free);
        assert!(
            by_name("nested_free").free,
            "mod blocks do not make items associated"
        );
        assert_eq!(
            by_name("decl").body,
            (0, 0),
            "bodiless decl has an empty body span"
        );
    }

    #[test]
    fn params_are_collected() {
        let parsed = parse_src("fn f(a: u64, mut b: f64, &self, (c, d): (u8, u8)) {}");
        let f = &parsed.fns[0];
        assert_eq!(f.params, vec!["a", "b", "self"]);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_the_body_span() {
        let src = "fn g<T: Ord>(x: T) -> Vec<T> where T: Clone { let v = make(x); v }";
        let parsed = parse_src(src);
        let f = &parsed.fns[0];
        assert_eq!(f.name, "g");
        assert_eq!(f.params, vec!["x"]);
        let lexed = lex(src);
        let body = &lexed.tokens[f.body.0..f.body.1];
        assert!(body.iter().any(|t| t.is_ident("make")));
        assert!(!body.iter().any(|t| t.is_ident("where")));
    }

    #[test]
    fn nested_fns_are_found_and_free() {
        let parsed = parse_src("fn outer() { fn inner(q: u8) -> u8 { q } inner(1); }");
        assert_eq!(parsed.fns.len(), 2);
        assert!(parsed.fns.iter().all(|f| f.free));
    }
}
