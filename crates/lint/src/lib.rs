//! `dcm-lint` — a determinism & simulation-safety static-analysis pass for
//! the DCM workspace.
//!
//! The repo's headline guarantee is that every experiment is bit-identical
//! for every `--jobs` value. That property rests on a handful of coding
//! rules (no hash-order iteration, no wall clocks, seeds derived through
//! [`derive_seed`], order-stable float reductions) which `cargo test` cannot
//! see — a nondeterministic controller still passes on any single run. This
//! crate makes the rules machine-checked:
//!
//! * a dependency-free token-level [`lexer`] (comments, strings, and
//!   `#[cfg(test)]` spans handled properly),
//! * a [`rules`] engine with crate-scoped severity (strict library crates
//!   vs relaxed harness/tooling code vs tests),
//! * inline suppressions — `// dcm-lint: allow(<rule>) reason="..."` — with
//!   a mandatory reason, forbidden entirely in `sim`/`ntier`/`model`/
//!   `oracle`, and
//! * byte-stable text and JSON [`report`]s (CI `cmp`s two runs).
//!
//! Run it as `cargo run -p dcm-lint`, or `repro lint` from the bench
//! harness. Exit code is nonzero iff any strict-scope violation (or bad
//! suppression) is found.
//!
//! [`derive_seed`]: https://docs.rs/dcm-sim
//!
//! # Examples
//!
//! ```
//! use dcm_lint::{lint_source, rules::Scope};
//!
//! let outcome = lint_source(
//!     "demo.rs",
//!     "core",
//!     Scope::Strict,
//!     "fn now() -> std::time::Instant { std::time::Instant::now() }",
//! );
//! assert_eq!(outcome.diagnostics.len(), 1);
//! assert_eq!(outcome.diagnostics[0].rule, "wall-clock");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

pub use report::Report;
pub use rules::{Diagnostic, FileOutcome, Severity};

/// Lints one in-memory source file under an explicit scope. This is the
/// entry point the fixture tests (and any future editor integration) use.
pub fn lint_source(path: &str, crate_name: &str, scope: rules::Scope, source: &str) -> FileOutcome {
    let lexed = lexer::lex(source);
    rules::check_file(path, crate_name, scope, &lexed)
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads (a source
/// file disappearing mid-scan, unreadable permissions, ...), and fails
/// when the scan finds no Rust sources at all — a wrong `--root` must not
/// read as a clean bill of health.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = workspace::discover(root)?;
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Rust sources found under {}", root.display()),
        ));
    }
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for file in &files {
        let source = fs::read_to_string(&file.abs_path)?;
        let outcome = lint_source(&file.rel_path, &file.crate_name, file.scope, &source);
        report.diagnostics.extend(outcome.diagnostics);
        report.suppressions.extend(outcome.used_suppressions);
    }
    report.finalize();
    Ok(report)
}

/// Convenience used by binaries: locate the workspace root from the
/// current directory, falling back to this crate's compile-time location
/// (`crates/lint` → workspace root two levels up).
pub fn default_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    workspace::find_root(&cwd).unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .components()
            .collect()
    })
}
