//! `dcm-lint` — a determinism & simulation-safety static-analysis pass for
//! the DCM workspace.
//!
//! The repo's headline guarantee is that every experiment is bit-identical
//! for every `--jobs` value. That property rests on a handful of coding
//! rules (no hash-order iteration, no wall clocks, seeds derived through
//! [`derive_seed`], order-stable float reductions) which `cargo test` cannot
//! see — a nondeterministic controller still passes on any single run. This
//! crate makes the rules machine-checked:
//!
//! * a dependency-free token-level [`lexer`] (comments, strings, and
//!   `#[cfg(test)]` spans handled properly),
//! * a lightweight [`parse`] layer (fn items and their body spans) on top
//!   of the token stream,
//! * a [`rules`] engine with crate-scoped severity (strict library crates
//!   vs relaxed harness/tooling code vs tests), including the panic-path,
//!   hot-path-allocation, and atomics-ordering families,
//! * a cross-file determinism [`taint`] pass: wall-clock/entropy sources
//!   tracked through bindings, struct fields, and free-fn calls (per-crate
//!   summaries, see [`lint_files`]) into scheduling / seeding / queue-key /
//!   `results/*`-write sinks,
//! * inline suppressions — `// dcm-lint: allow(<rule>) reason="..."` — with
//!   a mandatory reason, forbidden entirely in `sim`/`ntier`/`model`/
//!   `oracle`, and
//! * byte-stable text, JSON, and SARIF 2.1.0 [`report`]s (CI `cmp`s two
//!   runs of each).
//!
//! Run it as `cargo run -p dcm-lint`, or `repro lint` from the bench
//! harness. Exit code is nonzero iff any strict-scope violation (or bad
//! suppression) is found.
//!
//! [`derive_seed`]: https://docs.rs/dcm-sim
//!
//! # Examples
//!
//! ```
//! use dcm_lint::{lint_source, rules::Scope};
//!
//! let outcome = lint_source(
//!     "demo.rs",
//!     "core",
//!     Scope::Strict,
//!     "fn now() -> std::time::Instant { std::time::Instant::now() }",
//! );
//! assert_eq!(outcome.diagnostics.len(), 1);
//! assert_eq!(outcome.diagnostics[0].rule, "wall-clock");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod taint;
pub mod workspace;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

pub use report::Report;
pub use rules::{Diagnostic, FileOutcome, Severity};

/// Lints one in-memory source file under an explicit scope, with no
/// cross-file call summary. This is the entry point single-file fixture
/// tests (and any future editor integration) use; multi-file analyses go
/// through [`lint_files`].
pub fn lint_source(path: &str, crate_name: &str, scope: rules::Scope, source: &str) -> FileOutcome {
    let lexed = lexer::lex(source);
    rules::check_file(path, crate_name, scope, &lexed)
}

/// One in-memory source file for [`lint_files`].
pub struct FileInput<'a> {
    /// Workspace-relative path (forward slashes) — drives the hot-module
    /// list and appears in diagnostics.
    pub rel_path: &'a str,
    /// Workspace crate directory name (`sim`, `core`, ...).
    pub crate_name: &'a str,
    /// Policy scope of the file.
    pub scope: rules::Scope,
    /// The file's source text.
    pub source: &'a str,
}

/// Lints a set of in-memory files as one workspace: pass 1 lexes and
/// parses everything and pools the free-fn taint summaries per crate;
/// pass 2 runs every rule on each file with its crate's symbol table, so
/// a wall-clock value returned by a free function in one file is caught
/// reaching a sink in another file of the same crate.
pub fn lint_files(files: &[FileInput]) -> Report {
    let lexed: Vec<_> = files.iter().map(|f| lexer::lex(f.source)).collect();
    let parsed: Vec<_> = lexed.iter().map(parse::parse).collect();

    let mut tables: BTreeMap<&str, taint::SymbolTable> = BTreeMap::new();
    for (i, f) in files.iter().enumerate() {
        if f.scope == rules::Scope::Test {
            continue;
        }
        let table = tables.entry(f.crate_name).or_default();
        for (name, origin) in taint::summarize(&lexed[i], &parsed[i]) {
            table.tainted_fns.entry(name).or_insert(origin);
        }
    }

    let empty = taint::SymbolTable::default();
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for (i, f) in files.iter().enumerate() {
        let symbols = tables.get(f.crate_name).unwrap_or(&empty);
        let outcome = rules::check_file_with(
            f.rel_path,
            f.crate_name,
            f.scope,
            &lexed[i],
            &parsed[i],
            symbols,
        );
        report.diagnostics.extend(outcome.diagnostics);
        report.suppressions.extend(outcome.used_suppressions);
    }
    report.finalize();
    report
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads (a source
/// file disappearing mid-scan, unreadable permissions, ...), and fails
/// when the scan finds no Rust sources at all — a wrong `--root` must not
/// read as a clean bill of health.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = workspace::discover(root)?;
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Rust sources found under {}", root.display()),
        ));
    }
    let sources: Vec<String> = files
        .iter()
        .map(|f| fs::read_to_string(&f.abs_path))
        .collect::<io::Result<_>>()?;
    let inputs: Vec<FileInput> = files
        .iter()
        .zip(&sources)
        .map(|(f, source)| FileInput {
            rel_path: &f.rel_path,
            crate_name: &f.crate_name,
            scope: f.scope,
            source,
        })
        .collect();
    Ok(lint_files(&inputs))
}

/// Convenience used by binaries: locate the workspace root from the
/// current directory, falling back to this crate's compile-time location
/// (`crates/lint` → workspace root two levels up).
pub fn default_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    workspace::find_root(&cwd).unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .components()
            .collect()
    })
}
