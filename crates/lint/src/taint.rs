//! The determinism taint pass: track wall-clock and entropy values from
//! their *sources*, through let bindings, struct fields, and one level of
//! cross-file calls, to the *sinks* where nondeterminism would corrupt a
//! committed artifact.
//!
//! The per-file token rules (`wall-clock`, `unseeded-rng`) catch a source
//! used *in place*. What they cannot see is a wall-clock or entropy value
//! that crosses a `let` binding, a function return, or a struct field
//! before reaching an event timestamp or a seed — exactly the leak shape
//! that silently breaks the `--jobs` bit-identity guarantee. This pass
//! closes that gap:
//!
//! * **Sources** — `SystemTime` / `Instant` (and `.elapsed()`),
//!   `thread_rng` / `from_entropy` / `OsRng` / `getrandom` / `rand::random`.
//! * **Propagation** — `let x = <tainted expr>`, reassignments, struct
//!   fields (both `obj.field = tainted` and `Struct { field: tainted }`
//!   literals), and calls to *free* functions whose return value is
//!   tainted. Free-fn summaries are pooled per crate, so a leak can cross
//!   a file boundary once (the one-level call summary). Associated
//!   functions are excluded from the summary: a bare method name cannot
//!   be resolved to its receiver type without inference, and a name-keyed
//!   summary of `new`-like constructors would poison every crate.
//! * **Sinks** — event-scheduling arguments (`schedule_at` / `schedule_in`
//!   / `schedule_now`), seed derivation (`derive_seed`, `seed_from`,
//!   `seed_from_u64`, `.seed(...)`), `push`/`insert` keys of ordered or
//!   hashed queue structures (`BinaryHeap`, `BTreeMap`, `BTreeSet`), and
//!   writes aimed at a `"results/..."` path literal. Writes whose literal
//!   names a `results/perf` file are exempt: the perf telemetry is the
//!   one sanctioned wall-clock artifact and is excluded from every
//!   determinism `cmp`.
//!
//! The pass is conservative about what it sees and silent about what it
//! cannot parse; combined with the source rules above, a false *negative*
//! here still needs the leak to start from a construct the token rules
//! banned in strict scope.

use std::collections::BTreeMap;

use crate::lexer::{LexedFile, TokKind, Token};
use crate::parse::{matching, FnItem, ParsedFile};

/// Rule name this pass reports under.
pub const RULE: &str = "determinism-taint";

/// Taint sources: identifier and the origin label used in diagnostics.
/// `elapsed` only counts as a method call (`.elapsed()`); the rest match
/// as plain identifiers.
const SOURCES: &[(&str, &str)] = &[
    ("SystemTime", "wall clock (SystemTime)"),
    ("Instant", "wall clock (Instant)"),
    ("thread_rng", "process entropy (thread_rng)"),
    ("ThreadRng", "process entropy (ThreadRng)"),
    ("from_entropy", "process entropy (from_entropy)"),
    ("OsRng", "process entropy (OsRng)"),
    ("getrandom", "process entropy (getrandom)"),
];

/// Method-position sources (must be preceded by `.`).
const METHOD_SOURCES: &[(&str, &str)] = &[("elapsed", "wall clock (elapsed)")];

/// Event-scheduling sink methods (tainted arguments = tainted timestamps
/// or tainted event payload ordering).
const SCHEDULE_SINKS: &[&str] = &["schedule_at", "schedule_in", "schedule_now"];

/// Seed-derivation sinks: a tainted input makes every downstream stream
/// nondeterministic.
const SEED_SINKS: &[&str] = &["derive_seed", "seed_from", "seed_from_u64"];

/// Queue structures whose `push`/`insert` keys are `Ord`/hash-ordered; a
/// tainted key perturbs pop order.
const QUEUE_TYPES: &[&str] = &["BinaryHeap", "BTreeMap", "BTreeSet"];

/// Per-crate summary of free functions whose return value carries taint.
/// Maps function name to the origin label of the taint it returns.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    /// `fn name -> origin` for tainted-returning free functions.
    pub tainted_fns: BTreeMap<String, String>,
}

/// One taint finding: a tainted value reaching a sink.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based line of the sink.
    pub line: u32,
    /// Human-readable description: origin and sink.
    pub message: String,
}

/// Builds the free-fn taint summary for one file (pass 1 of the
/// workspace scan). Returns `(fn name, origin)` pairs.
pub fn summarize(lexed: &LexedFile, parsed: &ParsedFile) -> Vec<(String, String)> {
    let empty = SymbolTable::default();
    let state = propagate(lexed, parsed, &empty);
    let mut out = Vec::new();
    for (fi, f) in parsed.fns.iter().enumerate() {
        if !f.free {
            continue;
        }
        if let Some(origin) = fn_returns_tainted(lexed, f, fi, &state) {
            out.push((f.name.clone(), origin));
        }
    }
    out
}

/// Runs the full taint analysis over one file (pass 2), with `symbols`
/// holding the per-crate free-fn summary. Findings inside `#[cfg(test)]`
/// spans are dropped.
pub fn analyze(lexed: &LexedFile, parsed: &ParsedFile, symbols: &SymbolTable) -> Vec<Finding> {
    let state = propagate(lexed, parsed, symbols);
    // Queue-typed bindings are collected file-wide: parameters and struct
    // fields declare their types outside any fn body span.
    let queues = collect_queue_bindings(&lexed.tokens, 0, lexed.tokens.len());
    let mut findings = Vec::new();
    for (fi, f) in parsed.fns.iter().enumerate() {
        find_sinks(lexed, f, fi, &state, &queues, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    findings.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    findings
}

/// Inserts `name -> origin` unless already present; returns true when the
/// map changed (the fixpoint's progress signal).
fn insert_new(map: &mut BTreeMap<String, String>, name: &str, origin: &str) -> bool {
    if map.contains_key(name) {
        return false;
    }
    map.insert(name.to_string(), origin.to_string());
    true
}

/// The resolved taint state of one file: per-fn tainted locals and the
/// file-level tainted field set.
struct TaintState<'a> {
    /// Index-aligned with `parsed.fns`: local binding name -> origin.
    locals: Vec<BTreeMap<String, String>>,
    /// Struct field name -> origin (file-level: assigned in one method,
    /// read in another).
    fields: BTreeMap<String, String>,
    symbols: &'a SymbolTable,
}

/// Fixpoint propagation over all fns: locals via let/assign, fields via
/// field assignment and struct literals. Bounded iteration keeps the pass
/// linear in practice.
fn propagate<'a>(
    lexed: &LexedFile,
    parsed: &ParsedFile,
    symbols: &'a SymbolTable,
) -> TaintState<'a> {
    let toks = &lexed.tokens;
    let mut state = TaintState {
        locals: vec![BTreeMap::new(); parsed.fns.len()],
        fields: BTreeMap::new(),
        symbols,
    };
    for _round in 0..6 {
        let mut changed = false;
        for (fi, f) in parsed.fns.iter().enumerate() {
            // Forward scan of the body, twice per round so a use-before-let
            // ordering still converges.
            for _ in 0..2 {
                changed |= scan_fn(toks, f, fi, &mut state);
            }
        }
        if !changed {
            break;
        }
    }
    state
}

/// One forward scan of `f`'s body: returns true when any new taint was
/// learned.
fn scan_fn(toks: &[Token], f: &FnItem, fi: usize, state: &mut TaintState) -> bool {
    let (start, end) = f.body;
    let mut changed = false;
    let mut i = start;
    while i < end {
        // `let [mut] name [: Ty] = expr ;`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(Token::ident) {
                if let Some((eq, semi)) = init_span(toks, j + 1, end) {
                    if let Some(origin) = expr_tainted(toks, eq + 1, semi, fi, state) {
                        if !state.locals[fi].contains_key(name) {
                            state.locals[fi].insert(name.to_string(), origin);
                            changed = true;
                        }
                    }
                    i = semi;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        // `obj.field = expr ;` (field write) and `name = expr ;`
        // (reassignment). Statement position: previous token ends a
        // statement or opens a block.
        let stmt_start = i == start
            || toks[i - 1].is_punct(';')
            || toks[i - 1].is_punct('{')
            || toks[i - 1].is_punct('}');
        if stmt_start {
            if let Some(name) = toks[i].ident() {
                // Walk a field path `a.b.c`; remember the last segment.
                let mut j = i;
                let mut last = name;
                while toks.get(j + 1).is_some_and(|t| t.is_punct('.')) {
                    match toks.get(j + 2).and_then(Token::ident) {
                        Some(seg) => {
                            last = seg;
                            j += 2;
                        }
                        None => break,
                    }
                }
                let is_assign = toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                    && !toks.get(j + 2).is_some_and(|t| t.is_punct('='));
                if is_assign {
                    let semi = stmt_end(toks, j + 2, end);
                    if let Some(origin) = expr_tainted(toks, j + 2, semi, fi, state) {
                        let map_changed = if j > i {
                            insert_new(&mut state.fields, last, &origin)
                        } else {
                            insert_new(&mut state.locals[fi], last, &origin)
                        };
                        changed |= map_changed;
                    }
                    i = semi;
                    continue;
                }
            }
        }
        // Struct literal `TypeName { field: expr, ... }`.
        if let Some(tyname) = toks[i].ident() {
            let is_type = tyname.chars().next().is_some_and(char::is_uppercase);
            let prev_blocks = i > 0
                && toks[i - 1].ident().is_some_and(|p| {
                    matches!(
                        p,
                        "struct" | "enum" | "union" | "impl" | "trait" | "for" | "mod"
                    )
                });
            if is_type && !prev_blocks && toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
                let close = matching(toks, i + 1).min(end);
                changed |= scan_struct_literal(toks, i + 2, close, fi, state);
                // Do not skip the span: nested literals/lets inside are
                // handled by the main loop too.
            }
        }
        i += 1;
    }
    changed
}

/// Scans struct-literal fields `name: expr` in `[start, end)` at depth 0
/// of that span, tainting field names whose initializer is tainted.
fn scan_struct_literal(
    toks: &[Token],
    start: usize,
    end: usize,
    fi: usize,
    state: &mut TaintState,
) -> bool {
    let mut changed = false;
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            if let Some(fname) = t.ident() {
                // `fname : expr` but not `fname :: path`.
                if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                {
                    let vend = field_value_end(toks, i + 2, end);
                    if let Some(origin) = expr_tainted(toks, i + 2, vend, fi, state) {
                        changed |= insert_new(&mut state.fields, fname, &origin);
                    }
                    i = vend;
                    continue;
                }
            }
        }
        i += 1;
    }
    changed
}

/// End of a struct-literal field value: the next `,` at depth 0, or `end`.
fn field_value_end(toks: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            return i;
        }
        i += 1;
    }
    end
}

/// Locates a `let` initializer: returns `(index of '=', index of ';')`.
/// Skips the optional `: Type` annotation; gives up on pattern bindings.
fn init_span(toks: &[Token], from: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct('=') && depth == 0 {
            if toks.get(i + 1).is_some_and(|n| n.is_punct('=')) {
                return None; // `==` cannot start an initializer
            }
            return Some((i, stmt_end(toks, i + 1, end)));
        } else if t.is_punct(';') && depth == 0 {
            return None; // `let x;` — no initializer
        }
        i += 1;
    }
    None
}

/// Index of the `;` ending the statement starting at `from` (or `end`),
/// with parens/brackets/braces balanced so `let x = if c { a } else { b };`
/// spans the whole expression.
fn stmt_end(toks: &[Token], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            return i;
        }
        i += 1;
    }
    end
}

/// Whether the token span `[start, end)` carries taint; returns the origin
/// label of the first tainted element.
fn expr_tainted(
    toks: &[Token],
    start: usize,
    end: usize,
    fi: usize,
    state: &TaintState,
) -> Option<String> {
    let mut i = start;
    while i < end.min(toks.len()) {
        if let Some(name) = toks[i].ident() {
            let after_dot = i > 0 && toks[i - 1].is_punct('.');
            if after_dot {
                // Method or field position: method sources and tainted
                // fields.
                if let Some(&(_, origin)) = METHOD_SOURCES.iter().find(|(n, _)| *n == name) {
                    if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                        return Some(origin.to_string());
                    }
                }
                if let Some(origin) = state.fields.get(name) {
                    return Some(origin.clone());
                }
            } else {
                if let Some(&(_, origin)) = SOURCES.iter().find(|(n, _)| *n == name) {
                    return Some(origin.to_string());
                }
                // `rand::random` — entropy via path call.
                if name == "random"
                    && i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("rand")
                {
                    return Some("process entropy (rand::random)".to_string());
                }
                if let Some(origin) = state.locals[fi].get(name) {
                    return Some(origin.clone());
                }
                // One-level cross-file call: a free fn known to return
                // taint. Definitions (`fn name(...)`) do not count.
                if toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !(i > 0 && toks[i - 1].is_ident("fn"))
                {
                    if let Some(origin) = state.symbols.tainted_fns.get(name) {
                        return Some(format!("{origin} via `{name}()`"));
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Whether `f`'s return value is tainted: any `return <tainted>;` or a
/// tainted trailing expression.
fn fn_returns_tainted(
    lexed: &LexedFile,
    f: &FnItem,
    fi: usize,
    state: &TaintState,
) -> Option<String> {
    let toks = &lexed.tokens;
    let (start, end) = f.body;
    if start >= end {
        return None;
    }
    // `return expr;` anywhere in the body.
    let mut i = start;
    while i < end {
        if toks[i].is_ident("return") {
            let semi = stmt_end(toks, i + 1, end);
            if let Some(origin) = expr_tainted(toks, i + 1, semi, fi, state) {
                return Some(origin);
            }
            i = semi;
        }
        i += 1;
    }
    // Trailing expression: tokens after the last top-level statement
    // boundary (a `;` at depth 0, or a `}` closing a depth-0 block that no
    // expression continues from — a `)`/`]` closing a call or index is
    // part of the expression, never a boundary).
    let mut depth = 0i32;
    let mut boundary = start;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if t.is_punct('}') && depth == 0 && !is_expr_tail(toks, i + 1, end) {
                boundary = i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            boundary = i + 1;
        }
        i += 1;
    }
    if boundary < end {
        expr_tainted(toks, boundary, end, fi, state)
    } else {
        None
    }
}

/// After a depth-0 `}`, does an expression continue (`.method()`, `?`,
/// operator)? If so the `}` is not a statement boundary.
fn is_expr_tail(toks: &[Token], i: usize, end: usize) -> bool {
    i < end
        && (toks[i].is_punct('.')
            || toks[i].is_punct('?')
            || toks[i].is_punct('+')
            || toks[i].is_punct('-')
            || toks[i].is_punct('*')
            || toks[i].is_punct('/'))
}

/// Sink detection inside one fn, with the fully-propagated state.
fn find_sinks(
    lexed: &LexedFile,
    f: &FnItem,
    fi: usize,
    state: &TaintState,
    queues: &[String],
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    let (start, end) = f.body;
    let mut i = start;
    while i < end {
        if lexed.in_test.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        let Some(name) = toks[i].ident() else {
            i += 1;
            continue;
        };
        let after_dot = i > 0 && toks[i - 1].is_punct('.');
        let is_call = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let is_def = i > 0 && toks[i - 1].is_ident("fn");
        if is_call && !is_def {
            if after_dot && SCHEDULE_SINKS.contains(&name) {
                let close = matching(toks, i + 1);
                if let Some(origin) = expr_tainted(toks, i + 2, close, fi, state) {
                    out.push(Finding {
                        line: toks[i].line,
                        message: format!(
                            "value tainted by {origin} reaches `{name}(...)` (event schedule/timestamp)"
                        ),
                    });
                }
            }
            if SEED_SINKS.contains(&name) || (after_dot && name == "seed") {
                let close = matching(toks, i + 1);
                if let Some(origin) = expr_tainted(toks, i + 2, close, fi, state) {
                    out.push(Finding {
                        line: toks[i].line,
                        message: format!(
                            "value tainted by {origin} reaches `{name}(...)` (seed derivation)"
                        ),
                    });
                }
            }
            if after_dot && (name == "push" || name == "insert") && i >= 2 {
                if let Some(recv) = toks[i - 2].ident() {
                    if queues.contains(&recv.to_string()) {
                        let close = matching(toks, i + 1);
                        if let Some(origin) = expr_tainted(toks, i + 2, close, fi, state) {
                            out.push(Finding {
                                line: toks[i].line,
                                message: format!(
                                    "value tainted by {origin} reaches `{recv}.{name}(...)` \
                                     (Ord/hash key of a queue structure)"
                                ),
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
    // Results-artifact writes: statement-level scan.
    let mut s = start;
    while s < end {
        let e = stmt_end(toks, s, end);
        let span = &toks[s..e.min(toks.len())];
        let has_write = span
            .iter()
            .any(|t| t.ident().is_some_and(|n| n.contains("write")));
        let results_lit = span.iter().find_map(|t| match &t.kind {
            TokKind::Str(text) if text.starts_with("results/") => Some(text.clone()),
            _ => None,
        });
        let in_test = lexed.in_test.get(s).copied().unwrap_or(false);
        if has_write && !in_test {
            if let Some(lit) = results_lit {
                // results/perf* is the sanctioned wall-clock artifact.
                if !lit.starts_with("results/perf") {
                    if let Some(origin) = expr_tainted(toks, s, e, fi, state) {
                        out.push(Finding {
                            line: toks[s].line,
                            message: format!(
                                "value tainted by {origin} written into committed artifact `{lit}`"
                            ),
                        });
                    }
                }
            }
        }
        s = e + 1;
    }
}

/// Queue-structure bindings in a body span: `name: BinaryHeap<..>` /
/// `let name = BTreeMap::new()`.
fn collect_queue_bindings(toks: &[Token], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let is_queue = |t: &Token| t.ident().is_some_and(|n| QUEUE_TYPES.contains(&n));
    let mut i = start;
    while i < end {
        if let Some(name) = toks[i].ident() {
            if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                // 12-token window: enough for `&mut std :: collections ::
                // BinaryHeap` (each `::` is two tokens).
                for t in toks.iter().take(end).skip(i + 2).take(12) {
                    if is_queue(t) {
                        out.push(name.to_string());
                        break;
                    }
                    if t.is_punct(',') || t.is_punct(';') || t.is_punct(')') || t.is_punct('=') {
                        break;
                    }
                }
            }
            if name == "let" {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(bound) = toks.get(j).and_then(Token::ident) {
                    if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                        for t in toks.iter().take(end).skip(j + 2).take(6) {
                            if is_queue(t) {
                                out.push(bound.to_string());
                                break;
                            }
                            if t.is_punct(';') || t.is_punct('(') {
                                break;
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}
