//! A minimal Rust lexer — just enough structure for token-level lint rules.
//!
//! The goal is *not* to parse Rust. The rules in this crate only need a
//! stream of identifiers and punctuation with accurate line numbers, with
//! three properties a plain regex scan cannot provide:
//!
//! 1. comments and string/char literals never produce identifier tokens
//!    (so `// uses HashMap` or `"Instant::now"` cannot false-positive),
//! 2. `// dcm-lint: allow(...)` suppression comments are surfaced as
//!    structured directives, and
//! 3. `#[cfg(test)]` item bodies are mapped to token spans so rules can
//!    exempt test code without a parser.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token classification. Literals keep only what the rules need: string
/// contents (for empty-`expect("")` detection); numeric and char literals
/// carry no payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal (contents without quotes, escapes left as written).
    Str(String),
    /// A char or numeric literal.
    Lit,
    /// A single punctuation character (`+=` arrives as `+` then `=`).
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `// dcm-lint: allow(<rule>) reason="..."` directive found in a
/// comment. The directive suppresses matching diagnostics on its own line
/// and on the line immediately below (so it can trail the offending code or
/// sit on its own line above it).
#[derive(Debug, Clone, PartialEq)]
pub struct Suppression {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// The mandatory justification. `None` when missing or empty — which is
    /// itself a lint violation (`bad-suppression`).
    pub reason: Option<String>,
    /// Set when the comment contained `dcm-lint:` but did not parse as
    /// `allow(rule, ...) reason="..."`.
    pub malformed: bool,
}

/// The lexed form of one source file.
#[derive(Debug)]
pub struct LexedFile {
    /// All code tokens, in source order.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true when `tokens[i]` lies inside a `#[cfg(test)]`
    /// item (or the whole file is `#![cfg(test)]`).
    pub in_test: Vec<bool>,
    /// Suppression directives, in source order.
    pub suppressions: Vec<Suppression>,
}

/// Lexes `source`, producing tokens, test-span marks, and suppression
/// directives. Never fails: unterminated literals or comments simply end at
/// EOF (the lint runs on code that may not compile yet).
pub fn lex(source: &str) -> LexedFile {
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    // Skip a shebang so `#!/usr/bin/env ...` is not lexed as `# !` tokens.
    if bytes.starts_with(b"#!") && !bytes.starts_with(b"#![") {
        while i < bytes.len() && bytes[i] != b'\n' {
            i += 1;
        }
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                if let Some(sup) = parse_suppression(text, line) {
                    suppressions.push(sup);
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting respected; may hide a directive too.
                let start = i + 2;
                let mut depth = 1;
                i += 2;
                let comment_line = line;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                if let Some(sup) = parse_suppression(&source[start..end], comment_line) {
                    suppressions.push(sup);
                }
            }
            '"' => {
                let (content, next_i, newlines) = scan_string(source, i + 1);
                tokens.push(Token {
                    kind: TokKind::Str(content),
                    line,
                });
                line += newlines;
                i = next_i;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'\''`).
                let rest = &bytes[i + 1..];
                if rest.first().is_some_and(|&b| b == b'\\') {
                    // Escaped char literal.
                    let mut j = i + 2;
                    if j < bytes.len() {
                        j += 1; // the escaped character itself
                    }
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Lit,
                        line,
                    });
                    i = (j + 1).min(bytes.len());
                } else {
                    // Count ident-ish chars after the quote.
                    let mut j = i + 1;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'\'') && j > i + 1 {
                        // 'x' — a char literal (possibly 'ab' which is
                        // invalid Rust; treat as literal anyway).
                        tokens.push(Token {
                            kind: TokKind::Lit,
                            line,
                        });
                        i = j + 1;
                    } else if j > i + 1 {
                        // Lifetime: emit nothing (rules never look at them).
                        i = j;
                    } else {
                        // `'(' `, `' '` etc. — a char literal of one
                        // non-ident char.
                        let mut k = i + 1;
                        while k < bytes.len() && bytes[k] != b'\'' && bytes[k] != b'\n' {
                            k += 1;
                        }
                        tokens.push(Token {
                            kind: TokKind::Lit,
                            line,
                        });
                        i = (k + 1).min(bytes.len());
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_alphanumeric() || b == '_' {
                        j += 1;
                    } else if b == '.' && bytes.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // `1.5` continues the literal; `1..n` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Lit,
                    line,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &source[start..j];
                // Raw / byte string prefixes: r", r#", b", br"...
                let is_str_prefix = matches!(word, "r" | "b" | "br" | "rb");
                if is_str_prefix && matches!(bytes.get(j), Some(&b'"') | Some(&b'#')) {
                    let raw = word.contains('r');
                    if raw {
                        let mut hashes = 0usize;
                        let mut k = j;
                        while bytes.get(k) == Some(&b'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if bytes.get(k) == Some(&b'"') {
                            let (content, next_i, newlines) =
                                scan_raw_string(source, k + 1, hashes);
                            tokens.push(Token {
                                kind: TokKind::Str(content),
                                line,
                            });
                            line += newlines;
                            i = next_i;
                            continue;
                        }
                    } else if bytes.get(j) == Some(&b'"') {
                        let (content, next_i, newlines) = scan_string(source, j + 1);
                        tokens.push(Token {
                            kind: TokKind::Str(content),
                            line,
                        });
                        line += newlines;
                        i = next_i;
                        continue;
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Ident(word.to_string()),
                    line,
                });
                i = j;
            }
            other => {
                tokens.push(Token {
                    kind: TokKind::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }

    let in_test = mark_test_spans(&tokens);
    LexedFile {
        tokens,
        in_test,
        suppressions,
    }
}

/// Scans a non-raw string body starting just past the opening quote.
/// Returns `(contents, index past closing quote, newlines consumed)`.
fn scan_string(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                return (source[start..i].to_string(), i + 1, newlines);
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[start..].to_string(), bytes.len(), newlines)
}

/// Scans a raw string body (`r#"..."#` with `hashes` hash marks) starting
/// just past the opening quote.
fn scan_raw_string(source: &str, start: usize, hashes: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (source[start..i].to_string(), i + 1 + hashes, newlines);
            }
        }
        if bytes[i] == b'\n' {
            newlines += 1;
        }
        i += 1;
    }
    (source[start..].to_string(), bytes.len(), newlines)
}

/// Parses a `dcm-lint:` directive out of one comment's text. Returns `None`
/// for ordinary comments. A directive must *start* the comment (after any
/// doc-comment markers) — prose that merely mentions the grammar, like this
/// very sentence's `dcm-lint: allow(...)`, is not a directive.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let text = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let body = text.strip_prefix("dcm-lint:")?.trim();
    let malformed = |_: &str| Suppression {
        line,
        rules: Vec::new(),
        reason: None,
        malformed: true,
    };
    let Some(rest) = body.strip_prefix("allow") else {
        return Some(malformed(body));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(malformed(body));
    };
    let Some(close) = rest.find(')') else {
        return Some(malformed(body));
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.find('"').map(|end| t[..end].trim().to_string()))
        .filter(|r| !r.is_empty());
    let malformed = rules.is_empty();
    Some(Suppression {
        line,
        rules,
        reason,
        malformed,
    })
}

/// Marks token spans covered by `#[cfg(test)]` items (and everything, for a
/// file-level `#![cfg(test)]`).
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].is_punct('!');
        if inner {
            j += 1;
        }
        if !(j < tokens.len() && tokens[j].is_punct('[')) {
            i += 1;
            continue;
        }
        // Find the matching `]` and look for a `test` ident inside a
        // `cfg(...)` within the attribute.
        let attr_start = j + 1;
        let mut depth = 1i32;
        let mut k = attr_start;
        while k < tokens.len() && depth > 0 {
            if tokens[k].is_punct('[') {
                depth += 1;
            } else if tokens[k].is_punct(']') {
                depth -= 1;
            }
            k += 1;
        }
        let attr_end = k.saturating_sub(1); // index of `]`
        let attr = &tokens[attr_start..attr_end.min(tokens.len())];
        let is_cfg_test = attr.first().is_some_and(|t| t.is_ident("cfg"))
            && attr.iter().any(|t| t.is_ident("test"));
        if !is_cfg_test {
            i = k;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            for flag in in_test.iter_mut() {
                *flag = true;
            }
            return in_test;
        }
        // Mark from the attribute through the end of the annotated item:
        // the body of the next `{...}` block, or through the next `;` for
        // braceless items (`#[cfg(test)] use ...;`).
        let mut m = k;
        let mut found = None;
        while m < tokens.len() {
            if tokens[m].is_punct('{') {
                found = Some(m);
                break;
            }
            if tokens[m].is_punct(';') {
                found = None;
                for flag in in_test.iter_mut().take(m + 1).skip(i) {
                    *flag = true;
                }
                break;
            }
            m += 1;
        }
        if let Some(open) = found {
            let mut depth = 1i32;
            let mut e = open + 1;
            while e < tokens.len() && depth > 0 {
                if tokens[e].is_punct('{') {
                    depth += 1;
                } else if tokens[e].is_punct('}') {
                    depth -= 1;
                }
                e += 1;
            }
            for flag in in_test.iter_mut().take(e).skip(i) {
                *flag = true;
            }
            i = e;
        } else {
            i = m.max(k);
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let real = Vec::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(ids.iter().any(|i| i == "Vec"));
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        // Lifetimes are swallowed whole (no `a` ident, no stray quote), and
        // the code around them lexes normally.
        assert_eq!(
            ids,
            vec!["fn", "f", "x", "str", "str", "x"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn char_literals_are_opaque() {
        let src = "let c = 'x'; let n = '\\n'; let q = '\\''; let tick = '('; ";
        let lexed = lex(src);
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .count();
        assert_eq!(lits, 4);
        assert!(!idents(src).contains(&"x".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\nthree\";\nlet marker = 1;";
        let lexed = lex(src);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker token present");
        assert_eq!(marker.line, 4);
    }

    #[test]
    fn number_literals_do_not_consume_ranges() {
        let src = "for i in 0..10 { let x = 1.5e-3; }";
        let lexed = lex(src);
        // `0..10` must produce two dots between two literals.
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = r#"
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                fn helper() { body(); }
            }
            fn more_lib() {}
        "#;
        let lexed = lex(src);
        let flag_of = |name: &str| {
            lexed
                .tokens
                .iter()
                .zip(&lexed.in_test)
                .find(|(t, _)| t.is_ident(name))
                .map(|(_, f)| *f)
                .expect("token present")
        };
        assert!(!flag_of("lib_code"));
        assert!(flag_of("helper"));
        assert!(flag_of("body"));
        assert!(!flag_of("more_lib"));
    }

    #[test]
    fn cfg_all_test_and_attr_stacking_are_marked() {
        let src = r#"
            #[cfg(all(test, feature = "x"))]
            #[allow(dead_code)]
            fn only_under_test() { body(); }
            fn lib_code() {}
        "#;
        let lexed = lex(src);
        let body = lexed
            .tokens
            .iter()
            .zip(&lexed.in_test)
            .find(|(t, _)| t.is_ident("body"))
            .map(|(_, f)| *f)
            .expect("token present");
        assert!(body);
    }

    #[test]
    fn suppression_directive_parses() {
        let src = r#"
            let x = m.len(); // dcm-lint: allow(hash-iter-order) reason="len is order-free"
        "#;
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 1);
        let sup = &lexed.suppressions[0];
        assert_eq!(sup.line, 2);
        assert_eq!(sup.rules, vec!["hash-iter-order".to_string()]);
        assert_eq!(sup.reason.as_deref(), Some("len is order-free"));
        assert!(!sup.malformed);
    }

    #[test]
    fn suppression_without_reason_is_flagged() {
        let src = "// dcm-lint: allow(wall-clock)\n";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 1);
        assert_eq!(lexed.suppressions[0].reason, None);
        assert!(!lexed.suppressions[0].malformed);

        let bad = lex("// dcm-lint: disable-everything\n");
        assert!(bad.suppressions[0].malformed);
    }

    #[test]
    fn prose_mentions_are_not_directives() {
        // Doc comments (and plain comments) that merely *mention* the
        // grammar mid-sentence must not parse as directives — otherwise the
        // linter flags its own documentation as bad suppressions.
        let src = "\
//! 2. `// dcm-lint: allow(...)` suppression comments are surfaced as\n\
/// A `// dcm-lint: allow(<rule>) reason=\"...\"` directive found in a\n\
// see dcm-lint: allow docs for details\n\
//! ```\n\
//! // dcm-lint: allow(wall-clock) reason=\"demo inside a doc example\"\n\
//! ```\n";
        assert!(lex(src).suppressions.is_empty());
    }

    #[test]
    fn multiple_rules_in_one_directive() {
        let src = "// dcm-lint: allow(wall-clock, panic-path) reason=\"startup only\"\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.suppressions[0].rules,
            vec!["wall-clock".to_string(), "panic-path".to_string()]
        );
    }
}
