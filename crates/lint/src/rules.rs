//! The rule engine: per-rule token scans, crate-scoped severity, and
//! suppression handling.
//!
//! Every rule works on the token stream of one file ([`crate::lexer`])
//! plus a tiny per-file binding resolver (which identifiers are hash
//! containers / channel receivers). No rule ever needs type inference: each
//! one is written so that what *is* statically visible errs on the side of
//! the determinism guarantee, and refinements live here — not in
//! suppression comments.

use crate::lexer::{LexedFile, Suppression, TokKind, Token};
use crate::parse::{self, matching, ParsedFile};
use crate::taint::{self, SymbolTable};

/// Where a file sits in the workspace policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Determinism-critical library code (`sim`, `bus`, `ntier`, `model`,
    /// `oracle`, `workload`, `core` under `src/`). Violations are errors.
    Strict,
    /// Tooling and harness code (`bench`, `lint`, `shims/*`). Violations
    /// are warnings; strict-only rules do not run at all.
    Relaxed,
    /// Test code (`tests/`, `benches/`, `examples/`, `#[cfg(test)]`).
    /// Only suppression hygiene is checked.
    Test,
}

/// Diagnostic severity. Only errors affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Must-fix violation in strict scope.
    Error,
    /// Advisory violation in relaxed scope.
    Warning,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (kebab-case).
    pub rule: &'static str,
    /// Error in strict scope, warning in relaxed.
    pub severity: Severity,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// A suppression that actually silenced a diagnostic (reported in the JSON
/// output so CI and reviewers can audit every one).
#[derive(Debug, Clone, PartialEq)]
pub struct UsedSuppression {
    /// Workspace-relative path.
    pub path: String,
    /// Line of the directive.
    pub line: u32,
    /// Rule it silenced.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// Static description of one rule, for `--format json` and the docs.
pub struct RuleSpec {
    /// Kebab-case rule name used in diagnostics and `allow(...)`.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Runs only in [`Scope::Strict`] files.
    pub strict_only: bool,
    /// Fix hint attached to every diagnostic.
    pub hint: &'static str,
}

/// Every shipped rule, in stable order.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        name: "hash-iter-order",
        description: "HashMap/HashSet in determinism-critical code: iteration order is \
                      randomized per process and leaks into results",
        strict_only: true,
        hint: "use BTreeMap/BTreeSet, or collect keys and sort before iterating",
    },
    RuleSpec {
        name: "wall-clock",
        description: "Instant/SystemTime in simulation code: wall-clock reads differ \
                      between runs (bench-bin instrumentation lives in relaxed scope)",
        strict_only: true,
        hint: "simulation code must use dcm_sim::time::SimTime; timing instrumentation \
               belongs in the bench harness",
    },
    RuleSpec {
        name: "unseeded-rng",
        description: "RNG from an entropy source, or seed arithmetic that can collide \
                      (additive offsets alias overlapping sweeps)",
        strict_only: false,
        hint: "derive every per-stream seed via dcm_sim::rng::derive_seed(base, stream)",
    },
    RuleSpec {
        name: "float-reduction",
        description: "sum/fold over an unordered source (hash container or mpsc \
                      receiver): float addition is not associative, so the result \
                      depends on arrival order",
        strict_only: false,
        hint: "reassemble results in input order first (dcm_sim::runner::run_ordered) \
               or accumulate into an index-addressed buffer",
    },
    RuleSpec {
        name: "panic-path",
        description: "panic-prone construct in library code: bare unwrap()/expect(\"\"), \
                      unchecked intrinsics, or slice-range arithmetic that can overrun \
                      (tests may panic freely)",
        strict_only: true,
        hint: "use expect(\"why this cannot fail\"), propagate the Result/Option, or \
               bound the range before slicing",
    },
    RuleSpec {
        name: "hot-path-alloc",
        description: "allocation in a hot module (sim::engine, sim::queue, ntier::flow, \
                      workload::cohort): clone()/to_vec()/format! or unbounded Vec \
                      growth inside the per-event path erases DES throughput",
        strict_only: true,
        hint: "borrow instead of cloning, pre-size with with_capacity, or hoist the \
               allocation out of the per-event path",
    },
    RuleSpec {
        name: "atomics-ordering",
        description: "Ordering::Relaxed load feeding a control decision (if/while/match): \
                      relaxed loads may observe stale values, so control flow can \
                      diverge between runs once live mode introduces real threads",
        strict_only: true,
        hint: "use Acquire for the load (and Release for the matching store), or make \
               the value a plain field if it is single-threaded",
    },
    RuleSpec {
        name: "determinism-taint",
        description: "a wall-clock or entropy value flows (through bindings, fields, or \
                      a cross-file call) into an event schedule, a seed, a queue \
                      ordering key, or a committed results/* artifact",
        strict_only: false,
        hint: "derive the value from SimTime/derive_seed instead; wall-clock telemetry \
               may only reach results/perf* files",
    },
    RuleSpec {
        name: "todo-markers",
        description: "todo!/unimplemented! in non-test code",
        strict_only: false,
        hint: "implement it, or return an explicit error variant",
    },
    RuleSpec {
        name: "bad-suppression",
        description: "malformed dcm-lint directive, missing reason, or unknown rule \
                      name (a suppression must say why)",
        strict_only: false,
        hint: "write `// dcm-lint: allow(<rule>) reason=\"...\"` with a real reason",
    },
    RuleSpec {
        name: "forbidden-suppression",
        description: "suppression directive inside a sim-critical crate (sim, ntier, \
                      model, oracle) where the determinism guarantee admits no \
                      exceptions",
        strict_only: false,
        hint: "fix the violation instead; these crates must lint clean with zero \
               suppressions",
    },
];

/// Crates whose strict scope admits no suppressions at all.
pub const NO_SUPPRESS_CRATES: &[&str] = &["sim", "ntier", "model", "oracle"];

/// Workspace-relative paths of the hot modules: the per-event simulation
/// path where an allocation is paid millions of times per experiment.
/// `hot-path-alloc` (and the plain-arithmetic-index leg of `panic-path`)
/// only run here.
pub const HOT_MODULES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/sim/src/queue.rs",
    "crates/ntier/src/flow.rs",
    "crates/ntier/src/graph.rs",
    "crates/workload/src/cache.rs",
    "crates/workload/src/cohort.rs",
];

/// True when `path` names one of the configured hot modules.
pub fn is_hot_module(path: &str) -> bool {
    HOT_MODULES.contains(&path)
}

fn spec(name: &str) -> &'static RuleSpec {
    RULES
        .iter()
        .find(|r| r.name == name)
        .expect("rule names used internally are registered in RULES")
}

fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived suppression, sorted by line.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressions that silenced something.
    pub used_suppressions: Vec<UsedSuppression>,
}

/// Runs every applicable rule over one lexed file, parsing it on the spot
/// and without any cross-file call summary. Single-file entry point used
/// by [`crate::lint_source`] and the unit tests; the workspace scan goes
/// through [`check_file_with`] so taint can cross file boundaries.
pub fn check_file(path: &str, crate_name: &str, scope: Scope, lexed: &LexedFile) -> FileOutcome {
    let parsed = parse::parse(lexed);
    check_file_with(
        path,
        crate_name,
        scope,
        lexed,
        &parsed,
        &SymbolTable::default(),
    )
}

/// Runs every applicable rule over one lexed+parsed file.
///
/// `crate_name` is the workspace directory name (`sim`, `core`, ...; empty
/// for top-level `tests/` and `examples/`). It drives the
/// no-suppressions-in-sim-critical-crates policy. `symbols` is the
/// per-crate free-fn taint summary built in pass 1 of the workspace scan.
pub fn check_file_with(
    path: &str,
    crate_name: &str,
    scope: Scope,
    lexed: &LexedFile,
    parsed: &ParsedFile,
    symbols: &SymbolTable,
) -> FileOutcome {
    let mut raw: Vec<Diagnostic> = Vec::new();
    let severity = match scope {
        Scope::Strict => Severity::Error,
        _ => Severity::Warning,
    };

    if scope != Scope::Test {
        let toks = &lexed.tokens;
        let live = |i: usize| !lexed.in_test[i];
        if scope == Scope::Strict {
            rule_hash_iter_order(path, toks, &live, &mut raw);
            rule_wall_clock(path, toks, &live, &mut raw);
            rule_panic_path(path, toks, &live, &mut raw);
            rule_hot_path_alloc(path, toks, &live, &mut raw);
            rule_atomics_ordering(path, toks, &live, &mut raw);
        }
        rule_unseeded_rng(path, toks, &live, severity, &mut raw);
        rule_float_reduction(path, toks, &live, severity, &mut raw);
        rule_todo_markers(path, toks, &live, severity, &mut raw);
        for finding in taint::analyze(lexed, parsed, symbols) {
            push(
                &mut raw,
                path,
                finding.line,
                "determinism-taint",
                severity,
                finding.message,
            );
        }
    }

    // Suppression pass: a well-formed directive silences matching
    // diagnostics on its own line and the line below. Directive hygiene
    // itself is checked in every scope.
    let mut out = FileOutcome::default();
    let forbidden = scope == Scope::Strict && NO_SUPPRESS_CRATES.contains(&crate_name);
    for sup in &lexed.suppressions {
        if forbidden {
            out.diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: sup.line,
                rule: "forbidden-suppression",
                severity: Severity::Error,
                message: format!("suppression directive in sim-critical crate `{crate_name}`"),
                hint: spec("forbidden-suppression").hint,
            });
            continue;
        }
        if sup.malformed {
            out.diagnostics.push(bad_suppression(
                path,
                sup,
                "malformed directive; expected `allow(<rule>) reason=\"...\"`".to_string(),
            ));
            continue;
        }
        if let Some(unknown) = sup.rules.iter().find(|r| !known_rule(r)) {
            out.diagnostics.push(bad_suppression(
                path,
                sup,
                format!("unknown rule `{unknown}` in allow(...)"),
            ));
            continue;
        }
        if sup.reason.is_none() {
            out.diagnostics.push(bad_suppression(
                path,
                sup,
                "suppression without a reason".to_string(),
            ));
        }
    }

    for diag in raw {
        let silenced = lexed.suppressions.iter().find(|sup| {
            !sup.malformed
                && sup.reason.is_some()
                && sup.rules.iter().any(|r| r == diag.rule)
                && (sup.line == diag.line || sup.line + 1 == diag.line)
        });
        match silenced {
            Some(sup) if !forbidden => out.used_suppressions.push(UsedSuppression {
                path: path.to_string(),
                line: sup.line,
                rule: diag.rule.to_string(),
                reason: sup.reason.clone().expect("checked above"),
            }),
            _ => out.diagnostics.push(diag),
        }
    }
    out.diagnostics
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn bad_suppression(path: &str, sup: &Suppression, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: sup.line,
        rule: "bad-suppression",
        severity: Severity::Error,
        message,
        hint: spec("bad-suppression").hint,
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    path: &str,
    line: u32,
    rule: &'static str,
    severity: Severity,
    message: String,
) {
    // One diagnostic per (rule, line): a single `use` line mentioning
    // HashMap twice is one finding, not two.
    if out
        .iter()
        .any(|d| d.rule == rule && d.line == line && d.path == path)
    {
        return;
    }
    out.push(Diagnostic {
        path: path.to_string(),
        line,
        rule,
        severity,
        message,
        hint: spec(rule).hint,
    });
}

// ---------------------------------------------------------------------------
// Individual rules
// ---------------------------------------------------------------------------

fn rule_hash_iter_order(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let Some(name) = t.ident() {
            if name == "HashMap" || name == "HashSet" {
                push(
                    out,
                    path,
                    t.line,
                    "hash-iter-order",
                    Severity::Error,
                    format!("`{name}` in determinism-critical code"),
                );
            }
        }
    }
}

fn rule_wall_clock(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let Some(name) = t.ident() {
            if name == "Instant" || name == "SystemTime" {
                push(
                    out,
                    path,
                    t.line,
                    "wall-clock",
                    Severity::Error,
                    format!("`{name}` (wall clock) in simulation code"),
                );
            }
        }
    }
}

/// Panic-prone constructs in library code. Four legs:
///
/// 1. bare `.unwrap()` (no invariant stated),
/// 2. `.expect("")` (empty invariant),
/// 3. unchecked intrinsics (`get_unchecked`, `unwrap_unchecked`,
///    `unchecked_add`/`sub`/`mul`) — UB, not even a clean panic,
/// 4. index/slice expressions whose bracket span does arithmetic:
///    `buf[start..start + n]` can overrun anywhere (flagged in all strict
///    files); a plain arithmetic index `m[i * cols + j]` is only flagged in
///    hot modules, where a panic also costs a bounds check per event —
///    quantile/MVA/linalg code legitimately index-computes everywhere else.
fn rule_panic_path(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    const UNCHECKED: &[&str] = &[
        "get_unchecked",
        "get_unchecked_mut",
        "unwrap_unchecked",
        "unchecked_add",
        "unchecked_sub",
        "unchecked_mul",
    ];
    let hot = is_hot_module(path);
    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        if toks[i].is_punct('.') {
            let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
                continue;
            };
            if name == "unwrap"
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                push(
                    out,
                    path,
                    toks[i + 1].line,
                    "panic-path",
                    Severity::Error,
                    "bare `unwrap()` in library code".to_string(),
                );
            }
            if name == "expect" && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                if let Some(TokKind::Str(s)) = toks.get(i + 3).map(|t| &t.kind) {
                    if s.trim().is_empty() {
                        push(
                            out,
                            path,
                            toks[i + 1].line,
                            "panic-path",
                            Severity::Error,
                            "`expect(\"\")` with an empty justification".to_string(),
                        );
                    }
                }
            }
            if UNCHECKED.contains(&name) {
                push(
                    out,
                    path,
                    toks[i + 1].line,
                    "panic-path",
                    Severity::Error,
                    format!("unchecked intrinsic `{name}` in library code"),
                );
            }
            continue;
        }
        // Postfix index/slice `expr[...]`: the `[` must follow an ident,
        // `)`, or `]` — which excludes attributes (`#[...]`), macro brackets
        // preceded by `!` (`vec![...]`), and slice-type positions (`&[u8]`).
        if toks[i].is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let postfix =
                matches!(prev.kind, TokKind::Ident(_)) || prev.is_punct(')') || prev.is_punct(']');
            // Macro brackets (`vec![`) put `!` right before the `[`, so
            // the postfix test above already rejects them.
            if !postfix {
                continue;
            }
            let close = matching(toks, i);
            let span = &toks[i + 1..close.min(toks.len())];
            let has_range = span
                .windows(2)
                .any(|w| w[0].is_punct('.') && w[1].is_punct('.'));
            let has_arith = span.iter().any(|t| t.is_punct('+') || t.is_punct('-'));
            if has_range && has_arith {
                push(
                    out,
                    path,
                    toks[i].line,
                    "panic-path",
                    Severity::Error,
                    "slice range computed by arithmetic can overrun".to_string(),
                );
            } else if has_arith && hot {
                push(
                    out,
                    path,
                    toks[i].line,
                    "panic-path",
                    Severity::Error,
                    "arithmetic index in a hot module (panic path + bounds check per event)"
                        .to_string(),
                );
            }
        }
    }
}

/// Allocations on the per-event path of a hot module.
fn rule_hot_path_alloc(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    if !is_hot_module(path) {
        return;
    }
    const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string"];
    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        // `.clone()` / `.to_vec()` / ... — method-position allocators.
        if toks[i].is_punct('.') {
            if let Some(name) = toks.get(i + 1).and_then(Token::ident) {
                if ALLOC_METHODS.contains(&name)
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    push(
                        out,
                        path,
                        toks[i + 1].line,
                        "hot-path-alloc",
                        Severity::Error,
                        format!("`.{name}()` allocates on the hot path"),
                    );
                }
            }
            continue;
        }
        let Some(name) = toks[i].ident() else {
            continue;
        };
        // `format!(...)` and `String::from(...)`.
        if name == "format" && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            push(
                out,
                path,
                toks[i].line,
                "hot-path-alloc",
                Severity::Error,
                "`format!` allocates on the hot path".to_string(),
            );
        }
        if name == "String"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("from"))
        {
            push(
                out,
                path,
                toks[i].line,
                "hot-path-alloc",
                Severity::Error,
                "`String::from` allocates on the hot path".to_string(),
            );
        }
        // Non-empty `vec![...]` (an empty `vec![]` allocates nothing).
        if name == "vec"
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
        {
            let close = matching(toks, i + 2);
            if close > i + 3 {
                push(
                    out,
                    path,
                    toks[i].line,
                    "hot-path-alloc",
                    Severity::Error,
                    "non-empty `vec![...]` allocates on the hot path".to_string(),
                );
            }
        }
    }
    // Unbounded growth: a local bound to `Vec::new()`/`vec![]` before a
    // loop, pushed into inside the loop — each event pays amortized
    // reallocation. Field pushes (`self.buf.push`) are the engine's own
    // ring storage and stay exempt; so do locals pre-sized with
    // `with_capacity`.
    let unsized_locals = collect_unsized_vec_locals(toks);
    if unsized_locals.is_empty() {
        return;
    }
    for (lstart, lend) in loop_bodies(toks) {
        let mut j = lstart;
        while j < lend {
            if live(j)
                && toks[j].is_punct('.')
                && toks.get(j + 1).is_some_and(|t| t.is_ident("push"))
            {
                if let Some(recv) = j.checked_sub(1).and_then(|p| toks[p].ident()) {
                    let dotted_recv = j >= 2 && toks[j - 2].is_punct('.');
                    if !dotted_recv
                        && unsized_locals
                            .iter()
                            .any(|(n, bind)| n == recv && *bind < lstart)
                    {
                        push(
                            out,
                            path,
                            toks[j + 1].line,
                            "hot-path-alloc",
                            Severity::Error,
                            format!(
                                "unbounded `{recv}.push` in a loop (pre-size with with_capacity)"
                            ),
                        );
                    }
                }
            }
            j += 1;
        }
    }
}

/// Locals bound to an unsized Vec (`let [mut] x = Vec::new()` or
/// `= vec![]`), with the token index of the binding.
fn collect_unsized_vec_locals(toks: &[Token]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).and_then(Token::ident) else {
            continue;
        };
        if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        let new_vec = toks.get(j + 2).is_some_and(|t| t.is_ident("Vec"))
            && toks.get(j + 5).is_some_and(|t| t.is_ident("new"));
        let empty_macro = toks.get(j + 2).is_some_and(|t| t.is_ident("vec"))
            && toks.get(j + 3).is_some_and(|t| t.is_punct('!'))
            && toks.get(j + 4).is_some_and(|t| t.is_punct('['))
            && toks.get(j + 5).is_some_and(|t| t.is_punct(']'));
        if new_vec || empty_macro {
            out.push((name.to_string(), i));
        }
    }
    out
}

/// Token spans (exclusive of braces) of every `for`/`while`/`loop` body.
fn loop_bodies(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let is_loop = toks[i]
            .ident()
            .is_some_and(|n| matches!(n, "for" | "while" | "loop"));
        if !is_loop {
            continue;
        }
        // The body is the next `{` before a `;` (a `;` means this `for` was
        // something else, e.g. an ident in a type position).
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct('{') {
            out.push((j + 1, matching(toks, j).min(toks.len())));
        }
    }
    out
}

/// `Ordering::Relaxed` loads feeding control flow.
fn rule_atomics_ordering(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        if !live(i) || !toks[i].is_punct('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_ident("load"))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let args = argument_span(toks, i + 2);
        if !args.iter().any(|t| t.is_ident("Relaxed")) {
            continue;
        }
        // Backward scan to the start of the statement: a control keyword
        // there means this load steers a branch.
        let mut back = i;
        let mut steers = false;
        while back > 0 {
            back -= 1;
            let t = &toks[back];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.ident()
                .is_some_and(|n| matches!(n, "if" | "while" | "match"))
            {
                steers = true;
                break;
            }
        }
        if steers {
            push(
                out,
                path,
                toks[i + 1].line,
                "atomics-ordering",
                Severity::Error,
                "`Ordering::Relaxed` load feeds a control decision".to_string(),
            );
        }
    }
}

fn rule_todo_markers(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        if let Some(name) = toks[i].ident() {
            if (name == "todo" || name == "unimplemented")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                push(
                    out,
                    path,
                    toks[i].line,
                    "todo-markers",
                    severity,
                    format!("`{name}!` in non-test code"),
                );
            }
        }
    }
}

/// Entropy sources plus collision-prone seed arithmetic.
fn rule_unseeded_rng(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    const ENTROPY: &[&str] = &[
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "OsRng",
        "getrandom",
    ];
    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if ENTROPY.contains(&name) {
            push(
                out,
                path,
                toks[i].line,
                "unseeded-rng",
                severity,
                format!("`{name}` draws from process entropy"),
            );
            continue;
        }
        // `rand::random` — the thread-local entropy shortcut.
        if name == "rand"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            push(
                out,
                path,
                toks[i].line,
                "unseeded-rng",
                severity,
                "`rand::random` draws from process entropy".to_string(),
            );
            continue;
        }
        // Seed arithmetic: `seed_from(base + i)` / `.seed(seed + users)`
        // aliases overlapping sweeps (seed 42 stream 7 == seed 43 stream 6).
        let is_seed_call = name == "seed_from"
            || name == "seed_from_u64"
            || (name == "seed" && i > 0 && toks[i - 1].is_punct('.'));
        if is_seed_call && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let args = argument_span(toks, i + 1);
            let has_arith = args.iter().any(|t| {
                t.is_punct('+') || t.is_ident("wrapping_add") || t.is_ident("checked_add")
            });
            let derived = args.iter().any(|t| t.is_ident("derive_seed"));
            if has_arith && !derived {
                push(
                    out,
                    path,
                    toks[i].line,
                    "unseeded-rng",
                    severity,
                    format!("`{name}(...)` builds a seed by addition; additive offsets collide"),
                );
            }
        }
    }
}

/// Tokens between an opening paren at `open` and its matching close paren
/// (exclusive on both ends).
fn argument_span(toks: &[Token], open: usize) -> &[Token] {
    let mut depth = 1i32;
    let mut j = open + 1;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
        }
        j += 1;
    }
    &toks[open + 1..j.saturating_sub(1).max(open + 1)]
}

/// Order-sensitive reductions over unordered sources.
fn rule_float_reduction(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    let hash_bindings = collect_hash_bindings(toks);
    let rx_bindings = collect_receiver_bindings(toks);
    if hash_bindings.is_empty() && rx_bindings.is_empty() {
        return;
    }

    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        let Some(name) = toks[i].ident() else {
            continue;
        };
        let from_hash = hash_bindings.iter().any(|b| b == name);
        let from_rx = rx_bindings.iter().any(|b| b == name);
        if !from_hash && !from_rx {
            continue;
        }
        // `x.values().sum()` / `rx.iter().fold(...)`: an iterator chain off
        // the unordered source that ends in a reduction, within the same
        // statement.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            let method = toks.get(i + 2).and_then(Token::ident);
            let unordered_iter = match method {
                Some("iter" | "into_iter") => true,
                Some("values" | "keys" | "drain" | "values_mut") => from_hash,
                Some("try_iter" | "recv") => from_rx,
                _ => false,
            };
            if unordered_iter {
                if let Some(line) = reduction_in_statement(toks, i + 2) {
                    push(
                        out,
                        path,
                        line,
                        "float-reduction",
                        severity,
                        format!(
                            "reduction over `{name}` ({}): arrival order is not stable",
                            if from_hash {
                                "hash container"
                            } else {
                                "channel receiver"
                            }
                        ),
                    );
                }
            }
        }
        // `for v in rx { total += v }` — accumulation inside a loop over the
        // unordered source.
        if i >= 1 && toks[i - 1].is_ident("in") {
            let mut back = i as i64 - 2;
            let mut is_for = false;
            while back >= 0 && (i as i64 - back) < 16 {
                if toks[back as usize].is_ident("for") {
                    is_for = true;
                    break;
                }
                if toks[back as usize].is_punct(';') || toks[back as usize].is_punct('{') {
                    break;
                }
                back -= 1;
            }
            if is_for {
                if let Some(line) = plus_assign_in_body(toks, i) {
                    push(
                        out,
                        path,
                        line,
                        "float-reduction",
                        severity,
                        format!("`+=` accumulation while iterating `{name}` in arrival order"),
                    );
                }
            }
        }
    }
}

/// Finds `.sum(` / `.fold(` / `.product(` between `start` and the end of
/// the current statement. Returns its line.
fn reduction_in_statement(toks: &[Token], start: usize) -> Option<u32> {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth < 0 {
                return None;
            }
        } else if (t.is_punct(';') || t.is_punct('{')) && depth == 0 {
            return None;
        } else if t.is_punct('.') {
            if let Some(m) = toks.get(j + 1).and_then(Token::ident) {
                if matches!(m, "sum" | "fold" | "product") {
                    return Some(toks[j + 1].line);
                }
            }
        }
        j += 1;
    }
    None
}

/// Finds a `+=` inside the `{...}` body following a for-loop header whose
/// `in`-expression contains the flagged source. `at` points into the header.
fn plus_assign_in_body(toks: &[Token], at: usize) -> Option<u32> {
    let mut j = at;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    let mut depth = 1i32;
    j += 1;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
        } else if toks[j].is_punct('+') && toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
            return Some(toks[j].line);
        }
        j += 1;
    }
    None
}

/// Identifiers declared as hash containers in this file, via `name:
/// HashMap<...>` (fields, params, let-bindings) or `let name =
/// HashMap::new()`.
fn collect_hash_bindings(toks: &[Token]) -> Vec<String> {
    let mut bindings = Vec::new();
    let is_hash = |t: &Token| t.is_ident("HashMap") || t.is_ident("HashSet");
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        // `name : [std :: collections ::] HashMap < ... >` — scan a short
        // window after the colon, stopping at tokens that end the type
        // position.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            for t in toks.iter().skip(i + 2).take(8) {
                if is_hash(t) {
                    bindings.push(name.to_string());
                    break;
                }
                if t.kind == TokKind::Punct(',')
                    || t.kind == TokKind::Punct(';')
                    || t.kind == TokKind::Punct(')')
                    || t.kind == TokKind::Punct('{')
                    || t.kind == TokKind::Punct('=')
                    || t.kind == TokKind::Punct('<')
                {
                    break;
                }
            }
        }
        // `let [mut] name = HashMap::new()` / `= HashSet::from(...)`.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(bound) = toks.get(j).and_then(Token::ident) else {
                continue;
            };
            if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                for t in toks.iter().skip(j + 2).take(6) {
                    if is_hash(t) {
                        bindings.push(bound.to_string());
                        break;
                    }
                    if t.is_punct(';') || t.is_punct('(') {
                        break;
                    }
                }
            }
        }
    }
    bindings
}

/// Receiver halves of `let (tx, rx) = mpsc::channel(...)` bindings.
fn collect_receiver_bindings(toks: &[Token]) -> Vec<String> {
    let mut bindings = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let (Some(_), Some(comma), Some(rx), Some(close)) = (
            toks.get(i + 2).and_then(Token::ident),
            toks.get(i + 3),
            toks.get(i + 4).and_then(Token::ident),
            toks.get(i + 5),
        ) else {
            continue;
        };
        if !comma.is_punct(',') || !close.is_punct(')') {
            continue;
        }
        // Confirm a channel constructor before the statement ends.
        for t in toks.iter().skip(i + 6).take(14) {
            if t.is_ident("channel") || t.is_ident("sync_channel") {
                bindings.push(rx.to_string());
                break;
            }
            if t.is_punct(';') {
                break;
            }
        }
    }
    bindings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn strict(src: &str) -> FileOutcome {
        check_file("test.rs", "core", Scope::Strict, &lex(src))
    }

    fn rules_of(outcome: &FileOutcome) -> Vec<&'static str> {
        outcome.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_iter_order_fires_and_respects_tests() {
        let out = strict("use std::collections::HashMap;\nfn f(m: &HashMap<u32,u32>) {}\n");
        assert_eq!(rules_of(&out), vec!["hash-iter-order", "hash-iter-order"]);
        assert_eq!(out.diagnostics[0].line, 1);
        assert_eq!(out.diagnostics[1].line, 2);

        let test_only = strict("#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n}\n");
        assert!(test_only.diagnostics.is_empty());
    }

    #[test]
    fn wall_clock_fires_in_strict_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_of(&strict(src)), vec!["wall-clock"]);
        let relaxed = check_file("bench.rs", "bench", Scope::Relaxed, &lex(src));
        assert!(
            relaxed.diagnostics.is_empty(),
            "bench instrumentation is allowed"
        );
    }

    #[test]
    fn unseeded_rng_entropy_and_seed_arith() {
        assert_eq!(
            rules_of(&strict("fn f() { let r = rand::thread_rng(); }")),
            vec!["unseeded-rng"]
        );
        assert_eq!(
            rules_of(&strict(
                "fn f(base: u64, i: u64) { SimRng::seed_from(base + i); }"
            )),
            vec!["unseeded-rng"]
        );
        // derive_seed makes it clean, as does a plain passthrough.
        assert!(
            strict("fn f(b: u64, i: u64) { SimRng::seed_from(derive_seed(b, i)); }")
                .diagnostics
                .is_empty()
        );
        assert!(strict("fn f(seed: u64) { SimRng::seed_from(seed); }")
            .diagnostics
            .is_empty());
    }

    #[test]
    fn float_reduction_hash_chain_and_rx_loop() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   m.values().sum()\n}\n";
        let out = strict(src);
        assert!(rules_of(&out).contains(&"float-reduction"));

        let rx = "fn f() -> f64 {\n\
                  let (tx, rx) = std::sync::mpsc::channel();\n\
                  let mut total = 0.0;\n\
                  for x in rx {\n    total += x;\n  }\n  total\n}\n";
        let out = strict(rx);
        assert_eq!(rules_of(&out), vec!["float-reduction"]);
        assert_eq!(out.diagnostics[0].line, 5);

        // Index-addressed reassembly is the blessed pattern: no finding.
        let ok = "fn f() {\n\
                  let (tx, rx) = std::sync::mpsc::channel();\n\
                  let mut slots = vec![0.0; 8];\n\
                  for (i, x) in rx {\n    slots[i] = x;\n  }\n}\n";
        assert!(strict(ok).diagnostics.is_empty());
    }

    #[test]
    fn unwrap_in_lib_and_empty_expect() {
        let out = strict("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(rules_of(&out), vec!["panic-path"]);
        let out = strict("fn f(x: Option<u32>) -> u32 { x.expect(\"\") }");
        assert_eq!(rules_of(&out), vec!["panic-path"]);
        assert!(
            strict("fn f(x: Option<u32>) -> u32 { x.expect(\"always set\") }")
                .diagnostics
                .is_empty()
        );
        // unwrap_or and unwrap_or_else are fine.
        assert!(strict("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }")
            .diagnostics
            .is_empty());
    }

    #[test]
    fn suppression_silences_and_is_recorded() {
        let src = "fn f() {\n\
                   // dcm-lint: allow(wall-clock) reason=\"host-side watchdog\"\n\
                   let t = Instant::now();\n}\n";
        let out = check_file("w.rs", "core", Scope::Strict, &lex(src));
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.used_suppressions.len(), 1);
        assert_eq!(out.used_suppressions[0].rule, "wall-clock");
        assert_eq!(out.used_suppressions[0].reason, "host-side watchdog");
    }

    #[test]
    fn suppression_without_reason_fails() {
        let src = "// dcm-lint: allow(wall-clock)\nfn f() { let t = Instant::now(); }\n";
        let out = check_file("w.rs", "core", Scope::Strict, &lex(src));
        let rules = rules_of(&out);
        assert!(rules.contains(&"bad-suppression"));
        assert!(
            rules.contains(&"wall-clock"),
            "reasonless directive must not silence"
        );
    }

    #[test]
    fn suppression_unknown_rule_fails() {
        let src = "// dcm-lint: allow(no-such-rule) reason=\"typo\"\nfn f() {}\n";
        let out = check_file("w.rs", "core", Scope::Strict, &lex(src));
        assert_eq!(rules_of(&out), vec!["bad-suppression"]);
    }

    #[test]
    fn sim_critical_crates_reject_all_suppressions() {
        let src = "// dcm-lint: allow(todo-markers) reason=\"good reason\"\nfn f() {}\n";
        let out = check_file("s.rs", "sim", Scope::Strict, &lex(src));
        assert_eq!(rules_of(&out), vec!["forbidden-suppression"]);
        // Same directive is fine in core (strict but suppressible).
        let out = check_file("c.rs", "core", Scope::Strict, &lex(src));
        assert!(out.diagnostics.is_empty());
    }

    #[test]
    fn test_scope_only_checks_directive_hygiene() {
        let src = "fn t() { let x: Option<u32> = None; x.unwrap(); let i = Instant::now(); }\n\
                   // dcm-lint: nonsense\n";
        let out = check_file("t.rs", "core", Scope::Test, &lex(src));
        assert_eq!(rules_of(&out), vec!["bad-suppression"]);
    }

    fn hot(src: &str) -> FileOutcome {
        check_file("crates/sim/src/engine.rs", "sim", Scope::Strict, &lex(src))
    }

    #[test]
    fn panic_path_arith_index_only_in_hot_modules() {
        let src =
            "pub fn at(m: &[f64], i: usize, j: usize, cols: usize) -> f64 { m[i * cols + j] }";
        assert_eq!(rules_of(&hot(src)), vec!["panic-path"]);
        assert!(
            strict(src).diagnostics.is_empty(),
            "row-major indexing is legitimate outside hot modules"
        );
        // Slice-range arithmetic is flagged in every strict file...
        let slice = "pub fn w(b: &[u8], s: usize, n: usize) -> &[u8] { &b[s..s + n] }";
        assert_eq!(rules_of(&strict(slice)), vec!["panic-path"]);
        // ...while attribute/macro brackets and plain indexing never are.
        let ok = "#[derive(Clone)]\npub struct S;\npub fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        assert!(strict(ok).diagnostics.is_empty());
    }

    #[test]
    fn hot_path_alloc_unbounded_push_leg() {
        let src = "pub fn drain(n: usize) -> Vec<u64> {\n\
                   let mut acc = Vec::new();\n\
                   for i in 0..n {\n    acc.push(step(i));\n  }\n  acc\n}";
        let out = hot(src);
        assert_eq!(rules_of(&out), vec!["hot-path-alloc"]);
        assert_eq!(out.diagnostics[0].line, 4);
        // Pre-sizing is the fix and lints clean; so does the same code
        // outside a hot module.
        let sized = src.replace("Vec::new()", "Vec::with_capacity(n)");
        assert!(hot(&sized).diagnostics.is_empty());
        assert!(strict(src).diagnostics.is_empty());
        // Field pushes (the engine's own ring storage) stay exempt.
        let field = "pub fn route(&mut self, idx: usize, ev: Event) {\n\
                     loop {\n    self.ring.push(ev);\n    break;\n  }\n}";
        assert!(hot(field).diagnostics.is_empty());
    }

    #[test]
    fn atomics_relaxed_counters_are_allowed() {
        // RMW counters and straight-line loads are fine; only a Relaxed
        // load steering a branch is flagged.
        let ok = "pub fn bump(c: &AtomicU64) -> u64 {\n\
                  c.fetch_add(1, Ordering::Relaxed);\n\
                  let snapshot = c.load(Ordering::Relaxed);\n  snapshot\n}";
        assert!(strict(ok).diagnostics.is_empty());
        let bad = "pub fn spin(c: &AtomicU64) {\n\
                   while c.load(Ordering::Relaxed) == 0 {}\n}";
        assert_eq!(rules_of(&strict(bad)), vec!["atomics-ordering"]);
        let acq = "pub fn spin(c: &AtomicU64) {\n\
                   while c.load(Ordering::Acquire) == 0 {}\n}";
        assert!(strict(acq).diagnostics.is_empty());
    }

    #[test]
    fn taint_reaches_queue_keys_and_results_writes() {
        // A tainted Ord key perturbs pop order.
        let queue = "pub fn enqueue(h: &mut std::collections::BinaryHeap<u64>) {\n\
                     let stamp = nanos(std::time::SystemTime::now());\n\
                     h.push(stamp);\n}";
        let out = check_file("b.rs", "bench", Scope::Relaxed, &lex(queue));
        assert_eq!(rules_of(&out), vec!["determinism-taint"]);
        assert_eq!(out.diagnostics[0].line, 3);
        // A tainted value written into a committed artifact is flagged...
        let artifact = "pub fn dump() {\n\
                        let t = std::time::Instant::now();\n\
                        let line = fmt(t);\n\
                        write_file(\"results/fig2a.json\", line);\n}";
        let out = check_file("b.rs", "bench", Scope::Relaxed, &lex(artifact));
        assert_eq!(rules_of(&out), vec!["determinism-taint"]);
        // ...but results/perf* is the sanctioned wall-clock telemetry.
        let perf = artifact.replace("results/fig2a.json", "results/perf.json");
        let out = check_file("b.rs", "bench", Scope::Relaxed, &lex(&perf));
        assert!(out.diagnostics.is_empty(), "got {:?}", out.diagnostics);
    }

    #[test]
    fn todo_markers_warn_in_relaxed() {
        let out = check_file("b.rs", "bench", Scope::Relaxed, &lex("fn f() { todo!() }"));
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].severity, Severity::Warning);
    }
}
