//! The rule engine: per-rule token scans, crate-scoped severity, and
//! suppression handling.
//!
//! Every rule works on the token stream of one file ([`crate::lexer`])
//! plus a tiny per-file binding resolver (which identifiers are hash
//! containers / channel receivers). No rule ever needs type inference: each
//! one is written so that what *is* statically visible errs on the side of
//! the determinism guarantee, and refinements live here — not in
//! suppression comments.

use crate::lexer::{LexedFile, Suppression, TokKind, Token};

/// Where a file sits in the workspace policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Determinism-critical library code (`sim`, `bus`, `ntier`, `model`,
    /// `oracle`, `workload`, `core` under `src/`). Violations are errors.
    Strict,
    /// Tooling and harness code (`bench`, `lint`, `shims/*`). Violations
    /// are warnings; strict-only rules do not run at all.
    Relaxed,
    /// Test code (`tests/`, `benches/`, `examples/`, `#[cfg(test)]`).
    /// Only suppression hygiene is checked.
    Test,
}

/// Diagnostic severity. Only errors affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Must-fix violation in strict scope.
    Error,
    /// Advisory violation in relaxed scope.
    Warning,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (kebab-case).
    pub rule: &'static str,
    /// Error in strict scope, warning in relaxed.
    pub severity: Severity,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// A suppression that actually silenced a diagnostic (reported in the JSON
/// output so CI and reviewers can audit every one).
#[derive(Debug, Clone, PartialEq)]
pub struct UsedSuppression {
    /// Workspace-relative path.
    pub path: String,
    /// Line of the directive.
    pub line: u32,
    /// Rule it silenced.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// Static description of one rule, for `--format json` and the docs.
pub struct RuleSpec {
    /// Kebab-case rule name used in diagnostics and `allow(...)`.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Runs only in [`Scope::Strict`] files.
    pub strict_only: bool,
    /// Fix hint attached to every diagnostic.
    pub hint: &'static str,
}

/// Every shipped rule, in stable order.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        name: "hash-iter-order",
        description: "HashMap/HashSet in determinism-critical code: iteration order is \
                      randomized per process and leaks into results",
        strict_only: true,
        hint: "use BTreeMap/BTreeSet, or collect keys and sort before iterating",
    },
    RuleSpec {
        name: "wall-clock",
        description: "Instant/SystemTime in simulation code: wall-clock reads differ \
                      between runs (bench-bin instrumentation lives in relaxed scope)",
        strict_only: true,
        hint: "simulation code must use dcm_sim::time::SimTime; timing instrumentation \
               belongs in the bench harness",
    },
    RuleSpec {
        name: "unseeded-rng",
        description: "RNG from an entropy source, or seed arithmetic that can collide \
                      (additive offsets alias overlapping sweeps)",
        strict_only: false,
        hint: "derive every per-stream seed via dcm_sim::rng::derive_seed(base, stream)",
    },
    RuleSpec {
        name: "float-reduction",
        description: "sum/fold over an unordered source (hash container or mpsc \
                      receiver): float addition is not associative, so the result \
                      depends on arrival order",
        strict_only: false,
        hint: "reassemble results in input order first (dcm_sim::runner::run_ordered) \
               or accumulate into an index-addressed buffer",
    },
    RuleSpec {
        name: "unwrap-in-lib",
        description: "unwrap()/expect(\"\") in library code: panics without a stated \
                      invariant (tests may unwrap freely)",
        strict_only: true,
        hint: "use expect(\"why this cannot fail\") or propagate the Result/Option",
    },
    RuleSpec {
        name: "todo-markers",
        description: "todo!/unimplemented! in non-test code",
        strict_only: false,
        hint: "implement it, or return an explicit error variant",
    },
    RuleSpec {
        name: "bad-suppression",
        description: "malformed dcm-lint directive, missing reason, or unknown rule \
                      name (a suppression must say why)",
        strict_only: false,
        hint: "write `// dcm-lint: allow(<rule>) reason=\"...\"` with a real reason",
    },
    RuleSpec {
        name: "forbidden-suppression",
        description: "suppression directive inside a sim-critical crate (sim, ntier, \
                      model, oracle) where the determinism guarantee admits no \
                      exceptions",
        strict_only: false,
        hint: "fix the violation instead; these crates must lint clean with zero \
               suppressions",
    },
];

/// Crates whose strict scope admits no suppressions at all.
pub const NO_SUPPRESS_CRATES: &[&str] = &["sim", "ntier", "model", "oracle"];

fn spec(name: &str) -> &'static RuleSpec {
    RULES
        .iter()
        .find(|r| r.name == name)
        .expect("rule names used internally are registered in RULES")
}

fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived suppression, sorted by line.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressions that silenced something.
    pub used_suppressions: Vec<UsedSuppression>,
}

/// Runs every applicable rule over one lexed file.
///
/// `crate_name` is the workspace directory name (`sim`, `core`, ...; empty
/// for top-level `tests/` and `examples/`). It drives the
/// no-suppressions-in-sim-critical-crates policy.
pub fn check_file(path: &str, crate_name: &str, scope: Scope, lexed: &LexedFile) -> FileOutcome {
    let mut raw: Vec<Diagnostic> = Vec::new();
    let severity = match scope {
        Scope::Strict => Severity::Error,
        _ => Severity::Warning,
    };

    if scope != Scope::Test {
        let toks = &lexed.tokens;
        let live = |i: usize| !lexed.in_test[i];
        if scope == Scope::Strict {
            rule_hash_iter_order(path, toks, &live, &mut raw);
            rule_wall_clock(path, toks, &live, &mut raw);
            rule_unwrap_in_lib(path, toks, &live, &mut raw);
        }
        rule_unseeded_rng(path, toks, &live, severity, &mut raw);
        rule_float_reduction(path, toks, &live, severity, &mut raw);
        rule_todo_markers(path, toks, &live, severity, &mut raw);
    }

    // Suppression pass: a well-formed directive silences matching
    // diagnostics on its own line and the line below. Directive hygiene
    // itself is checked in every scope.
    let mut out = FileOutcome::default();
    let forbidden = scope == Scope::Strict && NO_SUPPRESS_CRATES.contains(&crate_name);
    for sup in &lexed.suppressions {
        if forbidden {
            out.diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: sup.line,
                rule: "forbidden-suppression",
                severity: Severity::Error,
                message: format!("suppression directive in sim-critical crate `{crate_name}`"),
                hint: spec("forbidden-suppression").hint,
            });
            continue;
        }
        if sup.malformed {
            out.diagnostics.push(bad_suppression(
                path,
                sup,
                "malformed directive; expected `allow(<rule>) reason=\"...\"`".to_string(),
            ));
            continue;
        }
        if let Some(unknown) = sup.rules.iter().find(|r| !known_rule(r)) {
            out.diagnostics.push(bad_suppression(
                path,
                sup,
                format!("unknown rule `{unknown}` in allow(...)"),
            ));
            continue;
        }
        if sup.reason.is_none() {
            out.diagnostics.push(bad_suppression(
                path,
                sup,
                "suppression without a reason".to_string(),
            ));
        }
    }

    for diag in raw {
        let silenced = lexed.suppressions.iter().find(|sup| {
            !sup.malformed
                && sup.reason.is_some()
                && sup.rules.iter().any(|r| r == diag.rule)
                && (sup.line == diag.line || sup.line + 1 == diag.line)
        });
        match silenced {
            Some(sup) if !forbidden => out.used_suppressions.push(UsedSuppression {
                path: path.to_string(),
                line: sup.line,
                rule: diag.rule.to_string(),
                reason: sup.reason.clone().expect("checked above"),
            }),
            _ => out.diagnostics.push(diag),
        }
    }
    out.diagnostics
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn bad_suppression(path: &str, sup: &Suppression, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line: sup.line,
        rule: "bad-suppression",
        severity: Severity::Error,
        message,
        hint: spec("bad-suppression").hint,
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    path: &str,
    line: u32,
    rule: &'static str,
    severity: Severity,
    message: String,
) {
    // One diagnostic per (rule, line): a single `use` line mentioning
    // HashMap twice is one finding, not two.
    if out
        .iter()
        .any(|d| d.rule == rule && d.line == line && d.path == path)
    {
        return;
    }
    out.push(Diagnostic {
        path: path.to_string(),
        line,
        rule,
        severity,
        message,
        hint: spec(rule).hint,
    });
}

// ---------------------------------------------------------------------------
// Individual rules
// ---------------------------------------------------------------------------

fn rule_hash_iter_order(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let Some(name) = t.ident() {
            if name == "HashMap" || name == "HashSet" {
                push(
                    out,
                    path,
                    t.line,
                    "hash-iter-order",
                    Severity::Error,
                    format!("`{name}` in determinism-critical code"),
                );
            }
        }
    }
}

fn rule_wall_clock(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if let Some(name) = t.ident() {
            if name == "Instant" || name == "SystemTime" {
                push(
                    out,
                    path,
                    t.line,
                    "wall-clock",
                    Severity::Error,
                    format!("`{name}` (wall clock) in simulation code"),
                );
            }
        }
    }
}

fn rule_unwrap_in_lib(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        if !live(i) || !toks[i].is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        if name == "unwrap"
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            push(
                out,
                path,
                toks[i + 1].line,
                "unwrap-in-lib",
                Severity::Error,
                "bare `unwrap()` in library code".to_string(),
            );
        }
        if name == "expect" && toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            if let Some(TokKind::Str(s)) = toks.get(i + 3).map(|t| &t.kind) {
                if s.trim().is_empty() {
                    push(
                        out,
                        path,
                        toks[i + 1].line,
                        "unwrap-in-lib",
                        Severity::Error,
                        "`expect(\"\")` with an empty justification".to_string(),
                    );
                }
            }
        }
    }
}

fn rule_todo_markers(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        if let Some(name) = toks[i].ident() {
            if (name == "todo" || name == "unimplemented")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                push(
                    out,
                    path,
                    toks[i].line,
                    "todo-markers",
                    severity,
                    format!("`{name}!` in non-test code"),
                );
            }
        }
    }
}

/// Entropy sources plus collision-prone seed arithmetic.
fn rule_unseeded_rng(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    const ENTROPY: &[&str] = &[
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "OsRng",
        "getrandom",
    ];
    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if ENTROPY.contains(&name) {
            push(
                out,
                path,
                toks[i].line,
                "unseeded-rng",
                severity,
                format!("`{name}` draws from process entropy"),
            );
            continue;
        }
        // `rand::random` — the thread-local entropy shortcut.
        if name == "rand"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
        {
            push(
                out,
                path,
                toks[i].line,
                "unseeded-rng",
                severity,
                "`rand::random` draws from process entropy".to_string(),
            );
            continue;
        }
        // Seed arithmetic: `seed_from(base + i)` / `.seed(seed + users)`
        // aliases overlapping sweeps (seed 42 stream 7 == seed 43 stream 6).
        let is_seed_call = name == "seed_from"
            || name == "seed_from_u64"
            || (name == "seed" && i > 0 && toks[i - 1].is_punct('.'));
        if is_seed_call && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let args = argument_span(toks, i + 1);
            let has_arith = args.iter().any(|t| {
                t.is_punct('+') || t.is_ident("wrapping_add") || t.is_ident("checked_add")
            });
            let derived = args.iter().any(|t| t.is_ident("derive_seed"));
            if has_arith && !derived {
                push(
                    out,
                    path,
                    toks[i].line,
                    "unseeded-rng",
                    severity,
                    format!("`{name}(...)` builds a seed by addition; additive offsets collide"),
                );
            }
        }
    }
}

/// Tokens between an opening paren at `open` and its matching close paren
/// (exclusive on both ends).
fn argument_span(toks: &[Token], open: usize) -> &[Token] {
    let mut depth = 1i32;
    let mut j = open + 1;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
        }
        j += 1;
    }
    &toks[open + 1..j.saturating_sub(1).max(open + 1)]
}

/// Order-sensitive reductions over unordered sources.
fn rule_float_reduction(
    path: &str,
    toks: &[Token],
    live: &dyn Fn(usize) -> bool,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    let hash_bindings = collect_hash_bindings(toks);
    let rx_bindings = collect_receiver_bindings(toks);
    if hash_bindings.is_empty() && rx_bindings.is_empty() {
        return;
    }

    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        let Some(name) = toks[i].ident() else {
            continue;
        };
        let from_hash = hash_bindings.iter().any(|b| b == name);
        let from_rx = rx_bindings.iter().any(|b| b == name);
        if !from_hash && !from_rx {
            continue;
        }
        // `x.values().sum()` / `rx.iter().fold(...)`: an iterator chain off
        // the unordered source that ends in a reduction, within the same
        // statement.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            let method = toks.get(i + 2).and_then(Token::ident);
            let unordered_iter = match method {
                Some("iter" | "into_iter") => true,
                Some("values" | "keys" | "drain" | "values_mut") => from_hash,
                Some("try_iter" | "recv") => from_rx,
                _ => false,
            };
            if unordered_iter {
                if let Some(line) = reduction_in_statement(toks, i + 2) {
                    push(
                        out,
                        path,
                        line,
                        "float-reduction",
                        severity,
                        format!(
                            "reduction over `{name}` ({}): arrival order is not stable",
                            if from_hash {
                                "hash container"
                            } else {
                                "channel receiver"
                            }
                        ),
                    );
                }
            }
        }
        // `for v in rx { total += v }` — accumulation inside a loop over the
        // unordered source.
        if i >= 1 && toks[i - 1].is_ident("in") {
            let mut back = i as i64 - 2;
            let mut is_for = false;
            while back >= 0 && (i as i64 - back) < 16 {
                if toks[back as usize].is_ident("for") {
                    is_for = true;
                    break;
                }
                if toks[back as usize].is_punct(';') || toks[back as usize].is_punct('{') {
                    break;
                }
                back -= 1;
            }
            if is_for {
                if let Some(line) = plus_assign_in_body(toks, i) {
                    push(
                        out,
                        path,
                        line,
                        "float-reduction",
                        severity,
                        format!("`+=` accumulation while iterating `{name}` in arrival order"),
                    );
                }
            }
        }
    }
}

/// Finds `.sum(` / `.fold(` / `.product(` between `start` and the end of
/// the current statement. Returns its line.
fn reduction_in_statement(toks: &[Token], start: usize) -> Option<u32> {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth < 0 {
                return None;
            }
        } else if (t.is_punct(';') || t.is_punct('{')) && depth == 0 {
            return None;
        } else if t.is_punct('.') {
            if let Some(m) = toks.get(j + 1).and_then(Token::ident) {
                if matches!(m, "sum" | "fold" | "product") {
                    return Some(toks[j + 1].line);
                }
            }
        }
        j += 1;
    }
    None
}

/// Finds a `+=` inside the `{...}` body following a for-loop header whose
/// `in`-expression contains the flagged source. `at` points into the header.
fn plus_assign_in_body(toks: &[Token], at: usize) -> Option<u32> {
    let mut j = at;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    let mut depth = 1i32;
    j += 1;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
        } else if toks[j].is_punct('+') && toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
            return Some(toks[j].line);
        }
        j += 1;
    }
    None
}

/// Identifiers declared as hash containers in this file, via `name:
/// HashMap<...>` (fields, params, let-bindings) or `let name =
/// HashMap::new()`.
fn collect_hash_bindings(toks: &[Token]) -> Vec<String> {
    let mut bindings = Vec::new();
    let is_hash = |t: &Token| t.is_ident("HashMap") || t.is_ident("HashSet");
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        // `name : [std :: collections ::] HashMap < ... >` — scan a short
        // window after the colon, stopping at tokens that end the type
        // position.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            for t in toks.iter().skip(i + 2).take(8) {
                if is_hash(t) {
                    bindings.push(name.to_string());
                    break;
                }
                if t.kind == TokKind::Punct(',')
                    || t.kind == TokKind::Punct(';')
                    || t.kind == TokKind::Punct(')')
                    || t.kind == TokKind::Punct('{')
                    || t.kind == TokKind::Punct('=')
                    || t.kind == TokKind::Punct('<')
                {
                    break;
                }
            }
        }
        // `let [mut] name = HashMap::new()` / `= HashSet::from(...)`.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(bound) = toks.get(j).and_then(Token::ident) else {
                continue;
            };
            if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                for t in toks.iter().skip(j + 2).take(6) {
                    if is_hash(t) {
                        bindings.push(bound.to_string());
                        break;
                    }
                    if t.is_punct(';') || t.is_punct('(') {
                        break;
                    }
                }
            }
        }
    }
    bindings
}

/// Receiver halves of `let (tx, rx) = mpsc::channel(...)` bindings.
fn collect_receiver_bindings(toks: &[Token]) -> Vec<String> {
    let mut bindings = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let (Some(_), Some(comma), Some(rx), Some(close)) = (
            toks.get(i + 2).and_then(Token::ident),
            toks.get(i + 3),
            toks.get(i + 4).and_then(Token::ident),
            toks.get(i + 5),
        ) else {
            continue;
        };
        if !comma.is_punct(',') || !close.is_punct(')') {
            continue;
        }
        // Confirm a channel constructor before the statement ends.
        for t in toks.iter().skip(i + 6).take(14) {
            if t.is_ident("channel") || t.is_ident("sync_channel") {
                bindings.push(rx.to_string());
                break;
            }
            if t.is_punct(';') {
                break;
            }
        }
    }
    bindings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn strict(src: &str) -> FileOutcome {
        check_file("test.rs", "core", Scope::Strict, &lex(src))
    }

    fn rules_of(outcome: &FileOutcome) -> Vec<&'static str> {
        outcome.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_iter_order_fires_and_respects_tests() {
        let out = strict("use std::collections::HashMap;\nfn f(m: &HashMap<u32,u32>) {}\n");
        assert_eq!(rules_of(&out), vec!["hash-iter-order", "hash-iter-order"]);
        assert_eq!(out.diagnostics[0].line, 1);
        assert_eq!(out.diagnostics[1].line, 2);

        let test_only = strict("#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n}\n");
        assert!(test_only.diagnostics.is_empty());
    }

    #[test]
    fn wall_clock_fires_in_strict_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(rules_of(&strict(src)), vec!["wall-clock"]);
        let relaxed = check_file("bench.rs", "bench", Scope::Relaxed, &lex(src));
        assert!(
            relaxed.diagnostics.is_empty(),
            "bench instrumentation is allowed"
        );
    }

    #[test]
    fn unseeded_rng_entropy_and_seed_arith() {
        assert_eq!(
            rules_of(&strict("fn f() { let r = rand::thread_rng(); }")),
            vec!["unseeded-rng"]
        );
        assert_eq!(
            rules_of(&strict(
                "fn f(base: u64, i: u64) { SimRng::seed_from(base + i); }"
            )),
            vec!["unseeded-rng"]
        );
        // derive_seed makes it clean, as does a plain passthrough.
        assert!(
            strict("fn f(b: u64, i: u64) { SimRng::seed_from(derive_seed(b, i)); }")
                .diagnostics
                .is_empty()
        );
        assert!(strict("fn f(seed: u64) { SimRng::seed_from(seed); }")
            .diagnostics
            .is_empty());
    }

    #[test]
    fn float_reduction_hash_chain_and_rx_loop() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   m.values().sum()\n}\n";
        let out = strict(src);
        assert!(rules_of(&out).contains(&"float-reduction"));

        let rx = "fn f() -> f64 {\n\
                  let (tx, rx) = std::sync::mpsc::channel();\n\
                  let mut total = 0.0;\n\
                  for x in rx {\n    total += x;\n  }\n  total\n}\n";
        let out = strict(rx);
        assert_eq!(rules_of(&out), vec!["float-reduction"]);
        assert_eq!(out.diagnostics[0].line, 5);

        // Index-addressed reassembly is the blessed pattern: no finding.
        let ok = "fn f() {\n\
                  let (tx, rx) = std::sync::mpsc::channel();\n\
                  let mut slots = vec![0.0; 8];\n\
                  for (i, x) in rx {\n    slots[i] = x;\n  }\n}\n";
        assert!(strict(ok).diagnostics.is_empty());
    }

    #[test]
    fn unwrap_in_lib_and_empty_expect() {
        let out = strict("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(rules_of(&out), vec!["unwrap-in-lib"]);
        let out = strict("fn f(x: Option<u32>) -> u32 { x.expect(\"\") }");
        assert_eq!(rules_of(&out), vec!["unwrap-in-lib"]);
        assert!(
            strict("fn f(x: Option<u32>) -> u32 { x.expect(\"always set\") }")
                .diagnostics
                .is_empty()
        );
        // unwrap_or and unwrap_or_else are fine.
        assert!(strict("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }")
            .diagnostics
            .is_empty());
    }

    #[test]
    fn suppression_silences_and_is_recorded() {
        let src = "fn f() {\n\
                   // dcm-lint: allow(wall-clock) reason=\"host-side watchdog\"\n\
                   let t = Instant::now();\n}\n";
        let out = check_file("w.rs", "core", Scope::Strict, &lex(src));
        assert!(out.diagnostics.is_empty());
        assert_eq!(out.used_suppressions.len(), 1);
        assert_eq!(out.used_suppressions[0].rule, "wall-clock");
        assert_eq!(out.used_suppressions[0].reason, "host-side watchdog");
    }

    #[test]
    fn suppression_without_reason_fails() {
        let src = "// dcm-lint: allow(wall-clock)\nfn f() { let t = Instant::now(); }\n";
        let out = check_file("w.rs", "core", Scope::Strict, &lex(src));
        let rules = rules_of(&out);
        assert!(rules.contains(&"bad-suppression"));
        assert!(
            rules.contains(&"wall-clock"),
            "reasonless directive must not silence"
        );
    }

    #[test]
    fn suppression_unknown_rule_fails() {
        let src = "// dcm-lint: allow(no-such-rule) reason=\"typo\"\nfn f() {}\n";
        let out = check_file("w.rs", "core", Scope::Strict, &lex(src));
        assert_eq!(rules_of(&out), vec!["bad-suppression"]);
    }

    #[test]
    fn sim_critical_crates_reject_all_suppressions() {
        let src = "// dcm-lint: allow(todo-markers) reason=\"good reason\"\nfn f() {}\n";
        let out = check_file("s.rs", "sim", Scope::Strict, &lex(src));
        assert_eq!(rules_of(&out), vec!["forbidden-suppression"]);
        // Same directive is fine in core (strict but suppressible).
        let out = check_file("c.rs", "core", Scope::Strict, &lex(src));
        assert!(out.diagnostics.is_empty());
    }

    #[test]
    fn test_scope_only_checks_directive_hygiene() {
        let src = "fn t() { let x: Option<u32> = None; x.unwrap(); let i = Instant::now(); }\n\
                   // dcm-lint: nonsense\n";
        let out = check_file("t.rs", "core", Scope::Test, &lex(src));
        assert_eq!(rules_of(&out), vec!["bad-suppression"]);
    }

    #[test]
    fn todo_markers_warn_in_relaxed() {
        let out = check_file("b.rs", "bench", Scope::Relaxed, &lex("fn f() { todo!() }"));
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].severity, Severity::Warning);
    }
}
